"""Tests for sweep memoization (in-process and on-disk)."""

import json

import pytest

from repro.bgp.config import BGPConfig
from repro.experiments import cache
from repro.experiments.cache import (
    cache_size,
    cached_sweep,
    clear_cache,
    current_execution,
    gc_cache_dir,
    sweep_cache_key,
    sweep_execution,
)
from repro.experiments.results_io import sweep_result_to_dict
from repro.experiments.scale import Scale

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.01)
TINY = Scale(name="tiny", sizes=(80,), origins=1)


class TestCachedSweep:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_second_call_returns_same_object(self):
        a = cached_sweep("BASELINE", TINY, config=FAST, seed=1)
        b = cached_sweep("BASELINE", TINY, config=FAST, seed=1)
        assert a is b
        assert cache_size() == 1

    def test_config_distinguishes_entries(self):
        cached_sweep("BASELINE", TINY, config=FAST, seed=1)
        cached_sweep("BASELINE", TINY, config=FAST.replace(wrate=True), seed=1)
        assert cache_size() == 2

    def test_seed_distinguishes_entries(self):
        cached_sweep("BASELINE", TINY, config=FAST, seed=1)
        cached_sweep("BASELINE", TINY, config=FAST, seed=2)
        assert cache_size() == 2

    def test_scenario_kwargs_distinguish_entries(self):
        cached_sweep("STATIC-MIDDLE", TINY, config=FAST, seed=1)
        cached_sweep(
            "STATIC-MIDDLE",
            TINY,
            config=FAST,
            seed=1,
            scenario_kwargs={"reference_n": 80},
        )
        assert cache_size() == 2

    def test_clear(self):
        cached_sweep("BASELINE", TINY, config=FAST, seed=1)
        clear_cache()
        assert cache_size() == 0


class TestCanonicalKey:
    """Regression: keys were built from raw (possibly unhashable) values."""

    def test_unhashable_kwargs_are_legal(self):
        key = sweep_cache_key(
            "BASELINE",
            (80,),
            1,
            FAST,
            0,
            {"weights": [1, 2, 3], "table": {"a": 1}},
        )
        assert isinstance(key, str) and len(key) == 64

    def test_key_is_stable_across_equal_inputs(self):
        a = sweep_cache_key("BASELINE", (80,), 1, FAST, 0, {"x": [1, 2]})
        b = sweep_cache_key("baseline", [80], 1, BGPConfig(
            mrai=1.0, link_delay=0.001, processing_time_max=0.01
        ), 0, {"x": [1, 2]})
        assert a == b

    def test_key_depends_on_every_input(self):
        base = sweep_cache_key("BASELINE", (80,), 1, FAST, 0, None)
        assert base != sweep_cache_key("TREE", (80,), 1, FAST, 0, None)
        assert base != sweep_cache_key("BASELINE", (80, 160), 1, FAST, 0, None)
        assert base != sweep_cache_key("BASELINE", (80,), 2, FAST, 0, None)
        assert base != sweep_cache_key(
            "BASELINE", (80,), 1, FAST.replace(wrate=True), 0, None
        )
        assert base != sweep_cache_key("BASELINE", (80,), 1, FAST, 1, None)
        assert base != sweep_cache_key("BASELINE", (80,), 1, FAST, 0, {"k": 1})

    def test_kwargs_order_is_irrelevant(self):
        a = sweep_cache_key("BASELINE", (80,), 1, FAST, 0, {"a": 1, "b": 2})
        b = sweep_cache_key("BASELINE", (80,), 1, FAST, 0, {"b": 2, "a": 1})
        assert a == b

    def test_mutating_kwargs_after_keying_is_safe(self):
        kwargs = {"weights": [1, 2]}
        before = sweep_cache_key("BASELINE", (80,), 1, FAST, 0, kwargs)
        kwargs["weights"].append(3)
        after = sweep_cache_key("BASELINE", (80,), 1, FAST, 0, kwargs)
        assert before != after


class TestDiskCache:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_miss_writes_entry(self, tmp_path):
        cached_sweep("BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path)
        assert list(tmp_path.glob("sweep-*.json"))

    def test_warm_cache_skips_simulation(self, tmp_path, monkeypatch):
        first = cached_sweep("BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path)
        clear_cache()  # drop the in-process layer, keep the disk layer

        def boom(*args, **kwargs):
            raise AssertionError("cache miss: simulation re-ran")

        monkeypatch.setattr(cache, "run_growth_sweep", boom)
        second = cached_sweep(
            "BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path
        )
        assert sweep_result_to_dict(second) == sweep_result_to_dict(first)

    def test_different_inputs_do_not_collide(self, tmp_path):
        cached_sweep("BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path)
        clear_cache()
        cached_sweep("BASELINE", TINY, config=FAST, seed=2, cache_dir=tmp_path)
        assert len(list(tmp_path.glob("sweep-*.json"))) == 2

    def test_corrupt_entry_recomputes(self, tmp_path):
        cached_sweep("BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path)
        clear_cache()
        for path in tmp_path.glob("sweep-*.json"):
            path.write_text("{ not json", encoding="utf-8")
        result = cached_sweep(
            "BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path
        )
        assert result.sizes == [80]

    def test_disk_round_trip_is_exact(self, tmp_path):
        first = cached_sweep("BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path)
        clear_cache()
        second = cached_sweep(
            "BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path
        )
        assert sweep_result_to_dict(second) == sweep_result_to_dict(first)
        assert second.config == first.config


class TestSweepExecutionContext:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def test_context_supplies_cache_dir_and_counts(self, tmp_path):
        with sweep_execution(cache_dir=tmp_path) as execution:
            cached_sweep("BASELINE", TINY, config=FAST, seed=1)
            cached_sweep("BASELINE", TINY, config=FAST, seed=1)
            assert execution.misses == 1
            assert execution.memory_hits == 1
            assert execution.worker_seconds > 0
        clear_cache()
        with sweep_execution(cache_dir=tmp_path) as execution:
            cached_sweep("BASELINE", TINY, config=FAST, seed=1)
            assert execution.disk_hits == 1
            assert execution.cache_hits == 1
            assert execution.misses == 0

    def test_context_restored_after_block(self, tmp_path):
        outer = current_execution()
        with sweep_execution(jobs=2, cache_dir=tmp_path):
            assert current_execution().jobs == 2
        assert current_execution() is outer


class TestCacheGc:
    def setup_method(self):
        clear_cache()

    def teardown_method(self):
        clear_cache()

    def _populate_mixed_dir(self, tmp_path):
        """One live entry plus every flavour of stale file gc must prune."""
        cached_sweep("BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path)
        (live,) = tmp_path.glob("sweep-*.json")

        stale_version = tmp_path / "sweep-deadbeef.json"
        document = json.loads(live.read_text(encoding="utf-8"))
        document["cache_meta"]["key_version"] = -1
        stale_version.write_text(json.dumps(document), encoding="utf-8")

        legacy = tmp_path / "sweep-cafebabe.json"
        document = json.loads(live.read_text(encoding="utf-8"))
        del document["cache_meta"]  # written before provenance existed
        legacy.write_text(json.dumps(document), encoding="utf-8")

        corrupt = tmp_path / "sweep-0badf00d.json"
        corrupt.write_text("{ not json", encoding="utf-8")

        orphan = tmp_path / "sweep-f33db33f.json.tmp"
        orphan.write_text("interrupted write", encoding="utf-8")

        unrelated = tmp_path / "notes.txt"
        unrelated.write_text("hands off", encoding="utf-8")
        return live, [stale_version, legacy, corrupt, orphan], unrelated

    def test_prunes_stale_entries_only(self, tmp_path):
        live, stale, unrelated = self._populate_mixed_dir(tmp_path)
        report = gc_cache_dir(tmp_path)
        assert live.exists()
        assert unrelated.exists()
        assert not any(path.exists() for path in stale)
        assert report.scanned == 4  # the sweep-*.json files, tmp aside
        assert report.kept == 1
        assert report.pruned == 4
        assert sorted(report.pruned_files) == sorted(stale)
        assert report.reclaimed_bytes > 0

    def test_dry_run_deletes_nothing(self, tmp_path):
        live, stale, unrelated = self._populate_mixed_dir(tmp_path)
        report = gc_cache_dir(tmp_path, dry_run=True)
        assert all(path.exists() for path in stale)
        assert live.exists() and unrelated.exists()
        assert report.pruned == 4
        assert report.dry_run is True
        assert "would prune" in report.to_text()

    def test_kept_entry_still_loads(self, tmp_path):
        self._populate_mixed_dir(tmp_path)
        gc_cache_dir(tmp_path)
        clear_cache()
        result = cached_sweep(
            "BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path
        )
        assert result.sizes == [80]

    def test_stale_code_version_pruned(self, tmp_path, monkeypatch):
        cached_sweep("BASELINE", TINY, config=FAST, seed=1, cache_dir=tmp_path)
        monkeypatch.setattr(cache, "__version__", "999.0.0")
        report = gc_cache_dir(tmp_path)
        assert report.pruned == 1
        assert list(tmp_path.glob("sweep-*.json")) == []

    def test_missing_dir_is_empty_report(self, tmp_path):
        report = gc_cache_dir(tmp_path / "nope")
        assert report.scanned == 0
        assert report.pruned == 0
        assert "pruned 0" in report.to_text()
