"""Tests for figure-module options not covered by the parametrized smoke."""

import pytest

from repro.bgp.config import BGPConfig
from repro.experiments import cache
from repro.experiments import fig01, fig12
from repro.experiments.scale import Scale

TINY = Scale(name="tiny-opt", sizes=(120, 240), origins=2, metric_sources=10)
FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


@pytest.fixture(autouse=True)
def _clear_cache():
    cache.clear_cache()
    yield
    cache.clear_cache()


class TestFig01Options:
    def test_custom_target_growth(self):
        result = fig01.run(TINY, seed=2, target_growth=4.0)
        growth_check = next(
            c for c in result.checks if c.name == "total growth over series"
        )
        assert "+400%" in growth_check.expected

    def test_smoke_scale_shortens_series(self):
        smoke = Scale(name="smoke", sizes=(200,), origins=1)
        result = fig01.run(smoke, seed=1)
        assert len(result.x_values) == 365 // 30


class TestFig12Options:
    def test_without_dense_core(self):
        result = fig12.run(TINY, seed=2, config=FAST, include_dense_core=False)
        assert "ratio T DENSE-CORE" not in result.series
        assert all("denser core" not in c.name for c in result.checks)

    def test_with_dense_core_adds_series_and_check(self):
        result = fig12.run(TINY, seed=2, config=FAST, include_dense_core=True)
        assert "ratio T DENSE-CORE" in result.series
        assert any("denser core" in c.name for c in result.checks)

    def test_wrate_and_no_wrate_sweeps_cached_separately(self):
        fig12.run(TINY, seed=2, config=FAST, include_dense_core=False)
        # BASELINE x {wrate, no-wrate} -> 2 cache entries
        assert cache.cache_size() == 2
