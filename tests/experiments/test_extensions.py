"""Focused tests for the extension experiments (beyond the generic smoke)."""

import pytest

from repro.bgp.config import BGPConfig
from repro.experiments import cache
from repro.experiments.ext_damping import run as run_damping
from repro.experiments.ext_evolution import run as run_evolution
from repro.experiments.ext_mrai import run as run_mrai
from repro.experiments.ext_prefix_scaling import run as run_prefix_scaling
from repro.experiments.scale import Scale

TINY = Scale(name="tiny-ext", sizes=(120, 240), origins=3, metric_sources=10)
FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


@pytest.fixture(autouse=True)
def _clear_cache():
    cache.clear_cache()
    yield
    cache.clear_cache()


class TestExtDamping:
    def test_storm_suppression_holds_at_tiny_scale(self):
        result = run_damping(TINY, seed=1, config=FAST)
        assert result.passed, result.to_text()
        off = result.series["updates damping off"]
        on = result.series["updates damping on"]
        assert all(o < u for o, u in zip(on, off))


class TestExtMrai:
    def test_series_cover_the_grid(self):
        result = run_mrai(TINY, seed=1, config=FAST)
        assert result.x_values == [0.0, 5.0, 15.0, 30.0]
        assert len(result.series["U(T) no-wrate"]) == 4

    def test_mrai_zero_converges_fast(self):
        result = run_mrai(TINY, seed=1, config=FAST)
        assert result.series["up conv no-wrate (s)"][0] < 1.0


class TestExtPrefixScaling:
    def test_shape_checks_hold_at_tiny_scale(self):
        result = run_prefix_scaling(TINY, seed=1, config=FAST)
        assert result.passed, result.to_text()
        tables = result.series["mean table size"]
        assert tables == sorted(tables)  # Loc-RIBs track the allocation
        assert result.series["decisions skipped (frac)"][-1] > 0.9

    def test_both_mrai_granularities_are_swept(self):
        result = run_prefix_scaling(TINY, seed=1, config=FAST)
        per_interface = result.series["churn per-interface (upd/s)"]
        per_prefix = result.series["churn per-prefix (upd/s)"]
        assert len(per_interface) == len(per_prefix) == len(result.x_values)
        assert all(value >= 0 for value in per_interface + per_prefix)


class TestExtEvolution:
    def test_narrow_span_uses_sustained_check(self):
        result = run_evolution(TINY, seed=1, config=FAST)
        names = [c.name for c in result.checks]
        assert "tier-1 churn sustained on the evolving network" in names
        assert result.notes  # the scale caveat is documented

    def test_wide_span_uses_growth_check(self):
        wide = Scale(name="wide-ext", sizes=(100, 200, 400), origins=3)
        result = run_evolution(wide, seed=1, config=FAST)
        names = [c.name for c in result.checks]
        assert "tier-1 churn grows on the evolving network" in names
