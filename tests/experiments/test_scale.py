"""Tests for scale presets."""

import pytest

from repro.errors import ParameterError
from repro.experiments.scale import PRESETS, Scale, get_scale


class TestPresets:
    def test_all_presets_valid(self):
        assert {"smoke", "default", "full", "paper"} <= set(PRESETS)
        for preset in PRESETS.values():
            assert preset.sizes == tuple(sorted(preset.sizes))
            assert preset.origins >= 1

    def test_paper_preset_matches_paper(self):
        paper = PRESETS["paper"]
        assert paper.sizes[0] == 1000
        assert paper.sizes[-1] == 10000
        assert paper.origins == 100

    def test_smallest_largest(self):
        scale = PRESETS["default"]
        assert scale.smallest == scale.sizes[0]
        assert scale.largest == scale.sizes[-1]


class TestGetScale:
    def test_by_name_case_insensitive(self):
        assert get_scale("SMOKE") is PRESETS["smoke"]

    def test_env_fallback(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "smoke")
        assert get_scale() is PRESETS["smoke"]

    def test_default_without_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert get_scale() is PRESETS["default"]

    def test_unknown_name(self):
        with pytest.raises(ParameterError, match="unknown scale"):
            get_scale("galactic")


class TestScaleValidation:
    def test_empty_sizes(self):
        with pytest.raises(ParameterError):
            Scale(name="x", sizes=(), origins=1)

    def test_degenerate_size(self):
        with pytest.raises(ParameterError):
            Scale(name="x", sizes=(10,), origins=1)

    def test_zero_origins(self):
        with pytest.raises(ParameterError):
            Scale(name="x", sizes=(100,), origins=0)
