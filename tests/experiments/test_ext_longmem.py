"""Tests for the ext-longmem churn long-memory experiment."""

from pathlib import Path

import pytest

from repro.bgp.config import BGPConfig
from repro.experiments import cache
from repro.experiments.ext_longmem import TOPOLOGY_ENV, run as run_longmem
from repro.experiments.registry import experiment_ids, get_experiment
from repro.experiments.scale import Scale

TINY = Scale(name="tiny-ext", sizes=(120, 240), origins=3, metric_sources=10)
FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)

FIXTURE = Path(__file__).parent.parent / "topology" / "data" / "fixture_serial1.txt"


@pytest.fixture(autouse=True)
def _clear_cache():
    cache.clear_cache()
    yield
    cache.clear_cache()


class TestExtLongmem:
    def test_registered_as_extension(self):
        assert "ext-longmem" in experiment_ids(include_extensions=True)
        assert "ext-longmem" not in experiment_ids(include_extensions=False)
        assert get_experiment("ext-longmem").experiment_id == "ext-longmem"

    def test_checks_hold_at_tiny_scale(self):
        result = run_longmem(TINY, seed=0, config=FAST)
        assert result.passed, result.to_text()
        assert result.x_values == [1.0, 2.0, 3.0]
        hursts = result.series["hurst (dfa1)"]
        assert len(hursts) == 3
        # poisson, storms, reference in that order; reference is the
        # known-H=0.75 series and must land in the measured band.
        assert 0.6 <= hursts[2] <= 0.9

    def test_confidence_interval_brackets_estimate(self):
        result = run_longmem(TINY, seed=0, config=FAST)
        lows = result.series["ci low"]
        highs = result.series["ci high"]
        assert all(lo <= hi for lo, hi in zip(lows, highs))

    def test_deterministic_across_runs(self):
        a = run_longmem(TINY, seed=0, config=FAST)
        b = run_longmem(TINY, seed=0, config=FAST)
        assert a.series == b.series

    def test_measured_topology_seam(self, monkeypatch):
        monkeypatch.setenv(TOPOLOGY_ENV, str(FIXTURE))
        result = run_longmem(TINY, seed=0, config=FAST)
        assert any("measured topology" in note for note in result.notes)
        # The analysis-chain checks don't depend on the topology source.
        by_name = {check.name: check for check in result.checks}
        assert by_name["estimators recover the known reference H"].passed
        assert by_name["reference series sits in the measured churn band"].passed
