"""Tests for experiment-result persistence."""

import pytest

from repro.errors import SerializationError
from repro.experiments.report import ExperimentResult
from repro.experiments.results_io import (
    load_results,
    result_from_dict,
    result_to_dict,
    save_results,
)


def make_result(experiment_id="figX"):
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="A figure",
        x_label="n",
        x_values=[100.0, 200.0],
        series={"U(T)": [1.0, 2.0]},
        notes=["reduced scale"],
    )
    result.add_check("ordering", True, "T wins", "T=2.0")
    return result


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = make_result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt.experiment_id == original.experiment_id
        assert rebuilt.series == original.series
        assert rebuilt.notes == original.notes
        assert rebuilt.checks == original.checks
        assert rebuilt.passed == original.passed

    def test_file_round_trip(self, tmp_path):
        results = [make_result("fig01"), make_result("fig02")]
        path = tmp_path / "campaign.json"
        save_results(results, path)
        loaded = load_results(path)
        assert [r.experiment_id for r in loaded] == ["fig01", "fig02"]
        assert loaded[0].to_text() == results[0].to_text()


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_results(tmp_path / "nope.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_results(path)

    def test_non_list_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"a": 1}', encoding="utf-8")
        with pytest.raises(SerializationError, match="list"):
            load_results(path)

    def test_wrong_version(self):
        data = result_to_dict(make_result())
        data["format_version"] = 99
        with pytest.raises(SerializationError, match="version"):
            result_from_dict(data)

    def test_missing_field(self):
        data = result_to_dict(make_result())
        del data["series"]
        with pytest.raises(SerializationError):
            result_from_dict(data)
