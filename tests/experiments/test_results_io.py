"""Tests for experiment-result persistence."""

import pytest

from repro.bgp.config import BGPConfig, MRAIMode, SendDiscipline
from repro.core.sweep import run_growth_sweep
from repro.errors import SerializationError
from repro.experiments.report import ExperimentResult
from repro.experiments.results_io import (
    config_from_dict,
    config_to_dict,
    load_results,
    load_sweep,
    result_from_dict,
    result_to_dict,
    save_results,
    save_sweep,
    sweep_result_from_dict,
    sweep_result_to_dict,
)


def make_result(experiment_id="figX"):
    result = ExperimentResult(
        experiment_id=experiment_id,
        title="A figure",
        x_label="n",
        x_values=[100.0, 200.0],
        series={"U(T)": [1.0, 2.0]},
        notes=["reduced scale"],
    )
    result.add_check("ordering", True, "T wins", "T=2.0")
    return result


class TestRoundTrip:
    def test_dict_round_trip(self):
        original = make_result()
        rebuilt = result_from_dict(result_to_dict(original))
        assert rebuilt.experiment_id == original.experiment_id
        assert rebuilt.series == original.series
        assert rebuilt.notes == original.notes
        assert rebuilt.checks == original.checks
        assert rebuilt.passed == original.passed

    def test_file_round_trip(self, tmp_path):
        results = [make_result("fig01"), make_result("fig02")]
        path = tmp_path / "campaign.json"
        save_results(results, path)
        loaded = load_results(path)
        assert [r.experiment_id for r in loaded] == ["fig01", "fig02"]
        assert loaded[0].to_text() == results[0].to_text()


class TestConfigRoundTrip:
    def test_default_config(self):
        config = BGPConfig()
        assert config_from_dict(config_to_dict(config)) == config

    def test_non_default_config(self):
        config = BGPConfig(
            mrai=5.0,
            wrate=True,
            jitter_low=0.5,
            jitter_high=0.9,
            mrai_mode=MRAIMode.PER_PREFIX,
            discipline=SendDiscipline.SEND_FIRST,
            processing_time_max=0.02,
            link_delay=0.001,
        )
        assert config_from_dict(config_to_dict(config)) == config

    def test_malformed_config(self):
        with pytest.raises(SerializationError):
            config_from_dict({"mrai": 1.0})


class TestSweepRoundTrip:
    @pytest.fixture(scope="class")
    def sweep(self):
        fast = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.01)
        return run_growth_sweep(
            "BASELINE", sizes=(80,), config=fast, num_origins=2, seed=1
        )

    def test_dict_round_trip_is_exact(self, sweep):
        rebuilt = sweep_result_from_dict(sweep_result_to_dict(sweep))
        # Exact — every float, list and config knob survives unchanged.
        assert sweep_result_to_dict(rebuilt) == sweep_result_to_dict(sweep)
        assert rebuilt.scenario == sweep.scenario
        assert rebuilt.sizes == sweep.sizes
        assert rebuilt.config == sweep.config
        assert rebuilt.stats[0].per_type == sweep.stats[0].per_type
        assert rebuilt.stats[0].origins == sweep.stats[0].origins

    def test_file_round_trip_is_exact(self, sweep, tmp_path):
        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert sweep_result_to_dict(loaded) == sweep_result_to_dict(sweep)

    def test_series_extractors_survive(self, sweep, tmp_path):
        from repro.topology.types import NodeType, Relationship

        path = tmp_path / "sweep.json"
        save_sweep(sweep, path)
        loaded = load_sweep(path)
        assert loaded.u_series(NodeType.T) == sweep.u_series(NodeType.T)
        assert loaded.m_series(NodeType.T, Relationship.CUSTOMER) == sweep.m_series(
            NodeType.T, Relationship.CUSTOMER
        )

    def test_wrong_sweep_version(self, sweep):
        data = sweep_result_to_dict(sweep)
        data["format_version"] = 99
        with pytest.raises(SerializationError, match="version"):
            sweep_result_from_dict(data)

    def test_corrupt_sweep_file(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[1, 2]", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_sweep(path)


class TestErrors:
    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_results(tmp_path / "nope.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{oops", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_results(path)

    def test_non_list_document(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"a": 1}', encoding="utf-8")
        with pytest.raises(SerializationError, match="list"):
            load_results(path)

    def test_wrong_version(self):
        data = result_to_dict(make_result())
        data["format_version"] = 99
        with pytest.raises(SerializationError, match="version"):
            result_from_dict(data)

    def test_missing_field(self):
        data = result_to_dict(make_result())
        del data["series"]
        with pytest.raises(SerializationError):
            result_from_dict(data)
