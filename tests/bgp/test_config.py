"""Tests for BGPConfig validation and presets."""

import pytest

from repro.bgp.config import (
    NO_WRATE_CONFIG,
    WRATE_CONFIG,
    BGPConfig,
    MRAIMode,
    SendDiscipline,
)
from repro.errors import ParameterError


class TestDefaults:
    def test_paper_defaults(self):
        config = BGPConfig()
        assert config.mrai == 30.0
        assert config.wrate is False
        assert config.mrai_mode is MRAIMode.PER_INTERFACE
        assert config.discipline is SendDiscipline.DELAY_FIRST
        assert config.processing_time_max == pytest.approx(0.100)
        assert config.rate_limiting_enabled

    def test_presets(self):
        assert NO_WRATE_CONFIG.wrate is False
        assert WRATE_CONFIG.wrate is True

    def test_damping_disabled_by_default(self):
        assert BGPConfig().damping.enabled is False


class TestValidation:
    def test_negative_mrai(self):
        with pytest.raises(ParameterError):
            BGPConfig(mrai=-1.0)

    def test_zero_mrai_disables_rate_limiting(self):
        assert not BGPConfig(mrai=0.0).rate_limiting_enabled

    def test_invalid_jitter_band(self):
        with pytest.raises(ParameterError):
            BGPConfig(jitter_low=1.2, jitter_high=1.0)
        with pytest.raises(ParameterError):
            BGPConfig(jitter_low=0.0, jitter_high=0.5)

    def test_negative_processing_time(self):
        with pytest.raises(ParameterError):
            BGPConfig(processing_time_max=-0.1)

    def test_negative_link_delay(self):
        with pytest.raises(ParameterError):
            BGPConfig(link_delay=-0.001)


class TestReplace:
    def test_replace_produces_new_validated_config(self):
        config = BGPConfig()
        wrate = config.replace(wrate=True)
        assert wrate.wrate is True
        assert config.wrate is False
        with pytest.raises(ParameterError):
            config.replace(mrai=-5.0)

    def test_config_hashable(self):
        """Configs key the sweep cache, so they must hash consistently."""
        assert hash(BGPConfig()) == hash(BGPConfig())
        assert BGPConfig() == BGPConfig()
        assert BGPConfig(wrate=True) != BGPConfig()
