"""Tests for update messages."""

import pytest

from repro.bgp.messages import UpdateMessage, announcement, withdrawal


class TestConstruction:
    def test_announcement(self):
        msg = announcement(1, 2, 0, (1, 5, 9))
        assert msg.is_announcement
        assert not msg.is_withdrawal
        assert msg.path == (1, 5, 9)
        assert msg.sender == 1 and msg.receiver == 2

    def test_withdrawal(self):
        msg = withdrawal(1, 2, 0)
        assert msg.is_withdrawal
        assert not msg.is_announcement
        assert msg.path is None

    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            announcement(1, 2, 0, ())

    def test_path_coerced_to_tuple(self):
        msg = announcement(1, 2, 0, [1, 5])
        assert msg.path == (1, 5)

    def test_messages_are_frozen(self):
        msg = withdrawal(1, 2, 0)
        with pytest.raises(AttributeError):
            msg.sender = 9

    def test_str_forms(self):
        assert "W(" in str(withdrawal(1, 2, 0))
        assert "A(" in str(announcement(1, 2, 0, (1,)))
