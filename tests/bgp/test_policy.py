"""Tests for the Gao–Rexford export policies."""

import pytest

from repro.bgp.policy import export_allowed, exportable, learned_relationship
from repro.bgp.route import import_route, local_route
from repro.topology.types import Relationship

CUST = Relationship.CUSTOMER
PEER = Relationship.PEER
PROV = Relationship.PROVIDER


class TestLearnedRelationship:
    def test_local_route(self):
        assert learned_relationship(local_route(0)) is None

    @pytest.mark.parametrize("rel", [CUST, PEER, PROV])
    def test_imported(self, rel):
        assert learned_relationship(import_route(0, (1,), rel)) is rel


class TestNoValleyMatrix:
    """The full Gao–Rexford export matrix."""

    def test_customer_routes_to_everyone(self):
        route = import_route(0, (1,), CUST)
        assert export_allowed(route, CUST)
        assert export_allowed(route, PEER)
        assert export_allowed(route, PROV)

    def test_peer_routes_only_to_customers(self):
        route = import_route(0, (1,), PEER)
        assert export_allowed(route, CUST)
        assert not export_allowed(route, PEER)
        assert not export_allowed(route, PROV)

    def test_provider_routes_only_to_customers(self):
        route = import_route(0, (1,), PROV)
        assert export_allowed(route, CUST)
        assert not export_allowed(route, PEER)
        assert not export_allowed(route, PROV)

    def test_local_routes_to_everyone(self):
        route = local_route(0)
        assert export_allowed(route, CUST)
        assert export_allowed(route, PEER)
        assert export_allowed(route, PROV)


class TestLoopAvoidance:
    def test_never_export_to_node_on_path(self):
        route = import_route(0, (3, 4, 5), CUST)
        assert not exportable(route, 4, CUST)
        assert not exportable(route, 3, CUST)

    def test_export_to_node_off_path(self):
        route = import_route(0, (3, 4, 5), CUST)
        assert exportable(route, 9, CUST)

    def test_loop_check_composes_with_valley_filter(self):
        route = import_route(0, (3,), PROV)
        assert not exportable(route, 9, PEER)  # valley
        assert not exportable(route, 3, CUST)  # loop
        assert exportable(route, 9, CUST)
