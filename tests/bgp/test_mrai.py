"""Tests for the MRAI-gated output channel (the heart of Sec. 6)."""

import random

import pytest

from repro.bgp.config import BGPConfig, MRAIMode, SendDiscipline
from repro.bgp.mrai import OutputChannel


def channel(**overrides):
    defaults = dict(mrai=10.0, jitter_low=1.0, jitter_high=1.0, wrate=False)
    defaults.update(overrides)
    config = BGPConfig(**defaults)
    return OutputChannel(owner=1, neighbor=2, config=config, rng=random.Random(0))


class TestDelayFirstDiscipline:
    """The paper's model: every rate-limited update waits for an expiry."""

    def test_announcement_is_queued_not_sent(self):
        ch = channel()
        messages, wakeup = ch.set_target(0, (9,), now=0.0)
        assert messages == []
        assert wakeup == pytest.approx(10.0)
        assert ch.pending_count == 1

    def test_wakeup_flushes_with_owner_prepended(self):
        ch = channel()
        ch.set_target(0, (9,), now=0.0)
        messages, next_wakeup = ch.wakeup(now=10.0)
        assert len(messages) == 1
        assert messages[0].path == (1, 9)
        assert next_wakeup is None
        assert ch.advertised(0) == (9,)

    def test_two_announcements_separated_by_interval(self):
        ch = channel()
        ch.set_target(0, (9,), now=0.0)
        ch.wakeup(now=10.0)  # sent, timer re-armed to 20
        messages, wakeup = ch.set_target(0, (8, 9), now=11.0)
        assert messages == []
        assert wakeup == pytest.approx(20.0)
        flushed, _ = ch.wakeup(now=20.0)
        assert flushed[0].path == (1, 8, 9)

    def test_withdrawal_bypasses_timer_no_wrate(self):
        ch = channel(wrate=False)
        ch.set_target(0, (9,), now=0.0)
        ch.wakeup(now=10.0)
        messages, wakeup = ch.set_target(0, None, now=11.0)
        assert len(messages) == 1
        assert messages[0].is_withdrawal
        assert wakeup is None

    def test_withdrawal_rate_limited_with_wrate(self):
        ch = channel(wrate=True)
        ch.set_target(0, (9,), now=0.0)
        ch.wakeup(now=10.0)
        messages, wakeup = ch.set_target(0, None, now=11.0)
        assert messages == []
        assert wakeup == pytest.approx(20.0)
        flushed, _ = ch.wakeup(now=20.0)
        assert flushed[0].is_withdrawal

    def test_queued_update_invalidated_by_newer(self):
        """'If a queued update becomes invalid ... removed from the queue'."""
        ch = channel()
        ch.set_target(0, (9,), now=0.0)
        ch.set_target(0, (8, 9), now=1.0)
        assert ch.pending_count == 1
        messages, _ = ch.wakeup(now=10.0)
        assert len(messages) == 1
        assert messages[0].path == (1, 8, 9)

    def test_withdrawal_cancels_queued_announcement(self):
        """NO-WRATE: a withdrawal kills the queued announcement silently
        when the neighbour never saw the route."""
        ch = channel(wrate=False)
        ch.set_target(0, (9,), now=0.0)
        messages, wakeup = ch.set_target(0, None, now=1.0)
        assert messages == []  # neighbour never knew the route
        assert ch.pending_count == 0
        assert ch.wakeup(now=10.0) == ([], None)

    def test_flap_back_to_advertised_cancels_pending(self):
        ch = channel()
        ch.set_target(0, (9,), now=0.0)
        ch.wakeup(now=10.0)  # (9,) advertised
        ch.set_target(0, (8, 9), now=11.0)  # queued
        messages, wakeup = ch.set_target(0, (9,), now=12.0)  # back to known
        assert messages == []
        assert wakeup is None
        assert ch.pending_count == 0

    def test_withdrawal_for_never_advertised_suppressed(self):
        ch = channel()
        messages, wakeup = ch.set_target(0, None, now=0.0)
        assert messages == []
        assert wakeup is None

    def test_duplicate_target_suppressed(self):
        ch = channel()
        ch.set_target(0, (9,), now=0.0)
        ch.wakeup(now=10.0)
        messages, wakeup = ch.set_target(0, (9,), now=11.0)
        assert messages == [] and wakeup is None


class TestSendFirstDiscipline:
    def test_idle_timer_sends_immediately(self):
        ch = channel(discipline=SendDiscipline.SEND_FIRST)
        messages, wakeup = ch.set_target(0, (9,), now=0.0)
        assert len(messages) == 1
        assert wakeup is None

    def test_second_update_waits(self):
        ch = channel(discipline=SendDiscipline.SEND_FIRST)
        ch.set_target(0, (9,), now=0.0)
        messages, wakeup = ch.set_target(0, (8, 9), now=1.0)
        assert messages == []
        assert wakeup == pytest.approx(10.0)


class TestPerInterfaceBatching:
    def test_one_expiry_flushes_all_prefixes(self):
        ch = channel()
        ch.set_target(0, (9,), now=0.0)
        ch.set_target(1, (7,), now=1.0)
        messages, next_wakeup = ch.wakeup(now=10.0)
        assert len(messages) == 2
        assert {m.prefix for m in messages} == {0, 1}
        assert next_wakeup is None


class TestPerPrefixMode:
    def test_independent_gates(self):
        ch = channel(mrai_mode=MRAIMode.PER_PREFIX)
        ch.set_target(0, (9,), now=0.0)  # gate at 10
        messages, _ = ch.wakeup(now=10.0)
        assert len(messages) == 1
        # prefix 1 arrives later and gets its own gate
        _, wakeup = ch.set_target(1, (7,), now=12.0)
        assert wakeup == pytest.approx(22.0)
        # prefix 0's next update waits for prefix-0 gate (20), not 22
        _, wakeup0 = ch.set_target(0, (8, 9), now=12.0)
        assert wakeup0 == pytest.approx(20.0)
        flushed, next_wakeup = ch.wakeup(now=20.0)
        assert [m.prefix for m in flushed] == [0]
        assert next_wakeup == pytest.approx(22.0)


class TestRateLimitingDisabled:
    def test_mrai_zero_sends_immediately(self):
        ch = channel(mrai=0.0)
        messages, wakeup = ch.set_target(0, (9,), now=0.0)
        assert len(messages) == 1 and wakeup is None
        messages, wakeup = ch.set_target(0, (8, 9), now=0.001)
        assert len(messages) == 1 and wakeup is None


class TestJitter:
    def test_jittered_interval_within_band(self):
        config = BGPConfig(mrai=30.0, jitter_low=0.75, jitter_high=1.0)
        ch = OutputChannel(1, 2, config, random.Random(3))
        gates = []
        for trial in range(50):
            now = trial * 1000.0
            _, wakeup = ch.set_target(trial, (9,), now=now)
            gates.append(wakeup - now)
            ch.wakeup(now=wakeup)
        assert all(22.5 <= g <= 30.0 for g in gates)
        assert max(gates) - min(gates) > 1.0  # actually jittered


class TestReset:
    def test_reset_clears_session_state(self):
        ch = channel()
        ch.set_target(0, (9,), now=0.0)
        ch.wakeup(now=10.0)
        ch.set_target(1, (7,), now=11.0)
        ch.reset()
        assert ch.pending_count == 0
        assert ch.advertised(0) is None
        # gate re-opened: next update queues against a fresh timer at now
        _, wakeup = ch.set_target(0, (9,), now=12.0)
        assert wakeup == pytest.approx(22.0)


class TestPerPrefixGatePruning:
    """Expired per-prefix gates must not accumulate (unbounded growth bug)."""

    def test_wakeup_prunes_expired_gates(self):
        ch = channel(mrai_mode=MRAIMode.PER_PREFIX)
        for prefix in range(50):
            ch.set_target(prefix, (9,), now=0.0)  # all gates at 10
        ch.wakeup(now=10.0)  # flush everything
        assert ch.pending_count == 0
        # Regression: the gates of already-flushed prefixes used to stay in
        # _prefix_gates forever; after the re-armed gates (20) expire, a
        # wakeup must drop them all.
        ch.wakeup(now=25.0)
        assert ch._prefix_gates == {}

    def test_pruning_preserves_semantics(self):
        # An expired gate behaves exactly like a missing one, so pruning
        # must not change what a later update for that prefix does.
        pruned = channel(mrai_mode=MRAIMode.PER_PREFIX)
        pruned.set_target(0, (9,), now=0.0)
        pruned.wakeup(now=10.0)   # sent; gate re-armed to 20
        pruned.wakeup(now=30.0)   # nothing pending: prunes the stale gate
        assert pruned._prefix_gates == {}
        _, wakeup = pruned.set_target(0, (8, 9), now=31.0)
        assert wakeup == pytest.approx(41.0)  # fresh timer from now

    def test_pending_prefix_gates_survive_pruning(self):
        ch = channel(mrai_mode=MRAIMode.PER_PREFIX)
        ch.set_target(0, (9,), now=0.0)   # gate 10
        ch.wakeup(now=10.0)               # sent, re-armed to 20
        ch.set_target(1, (7,), now=15.0)  # gate 25, pending
        messages, next_wakeup = ch.wakeup(now=22.0)  # prefix-0 gate stale
        assert messages == []
        assert next_wakeup == pytest.approx(25.0)
        assert ch._prefix_gates == {1: pytest.approx(25.0)}
        flushed, _ = ch.wakeup(now=25.0)
        assert [m.prefix for m in flushed] == [1]

    def test_dump_load_roundtrip_after_pruning(self):
        ch = channel(mrai_mode=MRAIMode.PER_PREFIX)
        for prefix in range(5):
            ch.set_target(prefix, (9,), now=0.0)
        ch.wakeup(now=10.0)
        ch.set_target(0, (8, 9), now=12.0)  # pending again, gate 20
        ch.wakeup(now=15.0)                 # prunes prefixes 1..4
        state = ch.dump_state()
        restored = channel(mrai_mode=MRAIMode.PER_PREFIX)
        restored.load_state(state)
        assert restored.dump_state() == state
        a, wa = ch.wakeup(now=20.0)
        b, wb = restored.wakeup(now=20.0)
        assert [m.prefix for m in a] == [m.prefix for m in b] == [0]
        assert wa == wb


class TestWakeupEdgeCases:
    """Timer edge cases at the node level: stale and early wakeups."""

    def test_early_wakeup_sends_nothing_and_reports_gate(self):
        ch = channel()
        _, gate = ch.set_target(0, (9,), now=0.0)
        messages, next_wakeup = ch.wakeup(now=gate - 1.0)
        assert messages == []
        assert next_wakeup == pytest.approx(gate)
        assert ch.pending_count == 1
        # The real expiry still flushes normally afterwards.
        flushed, _ = ch.wakeup(now=gate)
        assert len(flushed) == 1

    def test_early_wakeup_per_prefix(self):
        ch = channel(mrai_mode=MRAIMode.PER_PREFIX)
        _, gate = ch.set_target(0, (9,), now=0.0)
        messages, next_wakeup = ch.wakeup(now=gate - 1.0)
        assert messages == []
        assert next_wakeup == pytest.approx(gate)
        flushed, _ = ch.wakeup(now=gate)
        assert [m.prefix for m in flushed] == [0]

    def test_superseded_wakeup_is_ignored_by_node(self, diamond, fast_config):
        from repro.sim.network import SimNetwork

        network = SimNetwork(diamond, fast_config, seed=3)
        node = network.node(2)
        # Arm a wakeup at a late time, then supersede it with an earlier
        # one; delivering the stale MRAIWakeup must be a no-op.
        node._schedule_wakeup(4, 50.0)
        node._schedule_wakeup(4, 20.0)
        assert node._wakeup_at[4] == 20.0
        node._mrai_wakeup(4, 50.0)  # stale: at != scheduled
        assert node._wakeup_at[4] == 20.0  # untouched, no send attempted

    def test_wakeup_before_gate_reschedules(self, diamond, fast_config):
        from repro.sim.network import SimNetwork

        network = SimNetwork(diamond, fast_config, seed=3)
        node = network.node(2)
        ch = node.channel(4)
        _, gate = ch.set_target(0, (9,), now=0.0)
        assert gate is not None
        # Fire the node's wakeup handler before the gate expires: nothing
        # may be sent, and the correct next wakeup must be re-armed.
        node._wakeup_at[4] = 5.0
        node._mrai_wakeup(4, 5.0)
        assert ch.pending_count == 1
        assert node._wakeup_at[4] == pytest.approx(gate)
