"""Tests for Adj-RIB-In and Loc-RIB."""

from repro.bgp.rib import AdjRIBIn, LocRIB
from repro.bgp.route import import_route
from repro.topology.types import Relationship


def route(prefix, path):
    return import_route(prefix, path, Relationship.CUSTOMER)


class TestAdjRIBIn:
    def test_install_and_lookup(self):
        rib = AdjRIBIn()
        r = route(0, (5,))
        assert rib.update(0, 5, r) is None
        assert rib.route_from(0, 5) == r
        assert len(rib) == 1

    def test_replace_returns_previous(self):
        rib = AdjRIBIn()
        first = route(0, (5,))
        second = route(0, (5, 6))
        rib.update(0, 5, first)
        assert rib.update(0, 5, second) == first
        assert rib.route_from(0, 5) == second

    def test_withdrawal_removes(self):
        rib = AdjRIBIn()
        rib.update(0, 5, route(0, (5,)))
        previous = rib.update(0, 5, None)
        assert previous is not None
        assert rib.route_from(0, 5) is None
        assert len(rib) == 0

    def test_withdrawal_of_absent_is_noop(self):
        rib = AdjRIBIn()
        assert rib.update(0, 5, None) is None

    def test_candidates_scoped_by_prefix(self):
        rib = AdjRIBIn()
        rib.update(0, 5, route(0, (5,)))
        rib.update(0, 6, route(0, (6,)))
        rib.update(1, 5, route(1, (5,)))
        candidates = dict(rib.candidates(0))
        assert set(candidates) == {5, 6}
        assert len(rib.candidates(1)) == 1

    def test_prefixes_iteration(self):
        rib = AdjRIBIn()
        rib.update(0, 5, route(0, (5,)))
        rib.update(1, 5, route(1, (5,)))
        rib.update(1, 6, route(1, (6,)))
        assert sorted(rib.prefixes()) == [0, 1]

    def test_prefixes_from_neighbor(self):
        rib = AdjRIBIn()
        rib.update(0, 5, route(0, (5,)))
        rib.update(1, 5, route(1, (5,)))
        rib.update(2, 6, route(2, (6,)))
        assert sorted(rib.prefixes_from(5)) == [0, 1]
        assert rib.prefixes_from(7) == []


class TestLocRIB:
    def test_install_reports_change(self):
        rib = LocRIB()
        r = route(0, (5,))
        assert rib.install(0, r) is True
        assert rib.install(0, r) is False  # unchanged
        assert rib.best(0) == r

    def test_uninstall(self):
        rib = LocRIB()
        rib.install(0, route(0, (5,)))
        assert rib.install(0, None) is True
        assert rib.best(0) is None
        assert rib.install(0, None) is False

    def test_prefix_listing(self):
        rib = LocRIB()
        rib.install(0, route(0, (5,)))
        rib.install(3, route(3, (5,)))
        assert sorted(rib.prefixes()) == [0, 3]
        assert len(rib) == 2
