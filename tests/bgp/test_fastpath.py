"""Tests for the fast-path kernel: interning, memoized preference keys,
incremental decisions, and supersession of timer events.

These pin the two contracts the optimizations must keep:

* **semantic identity** — the incremental decision process and the
  memoized keys must select exactly what the full scan selects;
* **event economy** — superseded MRAI wakeups and duplicate damping
  reuse checks must leave the heap instead of executing as no-ops.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.config import BGPConfig, DampingConfig, MRAIMode
from repro.bgp.decision import select_best
from repro.bgp.events import DampingReuseCheck, MRAIWakeup
from repro.bgp.node import BGPNode
from repro.bgp.route import (
    Route,
    best_route,
    clear_intern_caches,
    import_route,
    intern_path,
    stable_hash,
)
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType, Relationship

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def _make_node(engine, config=FAST, neighbors=None, sent=None):
    sent = [] if sent is None else sent
    return BGPNode(
        node_id=1,
        node_type=NodeType.C,
        neighbors=neighbors or {2: Relationship.PEER, 3: Relationship.PROVIDER},
        engine=engine,
        config=config,
        rng=random.Random(0),
        transmit=lambda message, at: sent.append(message),
    )


class TestRouteInterning:
    def test_import_route_returns_shared_object(self):
        clear_intern_caches()
        a = import_route(0, (2, 5, 9), Relationship.PEER)
        b = import_route(0, (2, 5, 9), Relationship.PEER)
        assert a is b

    def test_paths_are_shared_across_routes(self):
        clear_intern_caches()
        a = Route(prefix=0, path=(1, 2, 3), local_pref=10)
        b = Route(prefix=7, path=(1, 2, 3), local_pref=20)
        assert a.path is b.path

    def test_route_is_frozen(self):
        route = Route(prefix=0, path=(1, 2), local_pref=5)
        with pytest.raises(Exception):
            route.prefix = 9
        with pytest.raises(Exception):
            del route.path

    def test_equality_and_hash_ignore_key_cache(self):
        a = Route(prefix=0, path=(1, 2), local_pref=5)
        b = Route(prefix=0, path=(1, 2), local_pref=5)
        a.preference_key(7)  # warm one cache, not the other
        assert a == b
        assert hash(a) == hash(b)
        assert repr(a) == repr(b)

    def test_pickle_round_trip_drops_cache(self):
        import pickle

        route = Route(prefix=3, path=(4, 5), local_pref=90)
        route.preference_key(11)
        clone = pickle.loads(pickle.dumps(route))
        assert clone == route
        assert clone.preference_key(11) == route.preference_key(11)

    def test_intern_cap_clears_instead_of_growing(self):
        from repro.bgp import route as route_mod

        clear_intern_caches()
        original = route_mod._INTERN_CAP
        route_mod._INTERN_CAP = 8
        try:
            for i in range(20):
                intern_path((i, i + 1))
            assert len(route_mod._PATH_INTERN) <= 8
        finally:
            route_mod._INTERN_CAP = original
            clear_intern_caches()


class TestPreferenceKeyMemo:
    @given(
        path=st.lists(st.integers(min_value=0, max_value=2**32), max_size=12),
        receiver=st.integers(min_value=0, max_value=2**32),
        local_pref=st.integers(min_value=0, max_value=200),
    )
    @settings(max_examples=200, deadline=None)
    def test_memoized_key_matches_fresh_computation(self, path, receiver, local_pref):
        route = Route(prefix=0, path=tuple(path), local_pref=local_pref)
        expected = (-local_pref, len(path), stable_hash(receiver, *path))
        assert route.preference_key(receiver) == expected
        # Second call must serve the memo and stay identical.
        assert route.preference_key(receiver) == expected

    @given(
        path=st.lists(st.integers(min_value=0, max_value=2**16), max_size=8),
        receivers=st.lists(
            st.integers(min_value=0, max_value=2**16), min_size=2, max_size=5
        ),
    )
    @settings(max_examples=100, deadline=None)
    def test_per_receiver_caches_are_independent(self, path, receivers):
        route = Route(prefix=0, path=tuple(path), local_pref=50)
        fresh = Route(prefix=0, path=tuple(path), local_pref=50)
        for receiver in receivers:
            assert route.preference_key(receiver) == fresh.preference_key(receiver)


class TestIncrementalDecision:
    """The incremental decision must match the full scan event-for-event."""

    @given(
        ops=st.lists(
            st.tuples(
                st.integers(min_value=2, max_value=5),  # neighbor
                st.one_of(
                    st.none(),
                    st.lists(
                        st.integers(min_value=6, max_value=12),
                        min_size=1,
                        max_size=4,
                    ),
                ),
            ),
            min_size=1,
            max_size=40,
        )
    )
    @settings(max_examples=150, deadline=None)
    def test_matches_full_scan_over_random_update_sequences(self, ops):
        engine = Engine()
        neighbors = {n: Relationship.PEER for n in range(2, 6)}
        node = _make_node(engine, neighbors=neighbors)
        for neighbor, tail in ops:
            previous = node.adj_rib_in.route_from(0, neighbor)
            if tail is None:
                route = None
            else:
                route = import_route(0, (neighbor, *tail), Relationship.PEER)
            node.adj_rib_in.update(0, neighbor, route)
            node._run_decision_incremental(0, previous, route, engine.now)
            reference = select_best(node.node_id, node._candidates(0, engine.now))
            assert node.loc_rib.best(0) == reference

    def test_replacing_best_with_worse_route_falls_back_to_scan(self):
        engine = Engine()
        node = _make_node(engine)
        good = import_route(0, (2, 9), Relationship.PEER)
        backup = import_route(0, (3, 8, 9), Relationship.PROVIDER)
        node.adj_rib_in.update(0, 2, good)
        node._run_decision_incremental(0, None, good, 0.0)
        node.adj_rib_in.update(0, 3, backup)
        node._run_decision_incremental(0, None, backup, 0.0)
        assert node.loc_rib.best(0) == good
        # Replace the installed best with a longer (worse) path: the
        # backup route must take over, exactly as a full scan would pick.
        worse = import_route(0, (2, 7, 8, 9), Relationship.PEER)
        node.adj_rib_in.update(0, 2, worse)
        node._run_decision_incremental(0, good, worse, 0.0)
        assert node.loc_rib.best(0) == select_best(
            node.node_id, node._candidates(0, 0.0)
        )

    def test_withdrawing_non_best_changes_nothing(self):
        engine = Engine()
        node = _make_node(engine)
        good = import_route(0, (2, 9), Relationship.PEER)
        backup = import_route(0, (3, 8, 9), Relationship.PROVIDER)
        node.adj_rib_in.update(0, 2, good)
        node._run_decision_incremental(0, None, good, 0.0)
        node.adj_rib_in.update(0, 3, backup)
        node._run_decision_incremental(0, None, backup, 0.0)
        changes_before = node.best_change_count.get(0, 0)
        node.adj_rib_in.update(0, 3, None)
        node._run_decision_incremental(0, backup, None, 0.0)
        assert node.loc_rib.best(0) == good
        assert node.best_change_count.get(0, 0) == changes_before

    def test_best_route_helper_unchanged_semantics(self):
        routes = [
            import_route(0, (2, 5), Relationship.PEER),
            import_route(0, (3, 5), Relationship.PEER),
            import_route(0, (4, 5), Relationship.CUSTOMER),
        ]
        assert best_route(routes, 1) == select_best(1, routes)


class TestStaleWakeupSupersession:
    def test_pending_events_stay_bounded_within_one_mrai_interval(self):
        """Regression: repeated superseding re-schedules must not bloat
        the heap — exactly one live wakeup per neighbour at any time."""
        engine = Engine()
        node = _make_node(engine, neighbors={2: Relationship.PEER})
        for i in range(100):
            node._schedule_wakeup(2, 50.0 - i * 0.1)
            assert engine.pending_events == 1
        engine.run()
        assert engine.executed_events == 1
        assert engine.cancelled_events == 99

    def test_equal_or_later_wakeup_is_ignored(self):
        engine = Engine()
        node = _make_node(engine, neighbors={2: Relationship.PEER})
        node._schedule_wakeup(2, 10.0)
        node._schedule_wakeup(2, 10.0)
        node._schedule_wakeup(2, 12.0)
        assert engine.pending_events == 1
        assert engine.cancelled_events == 0

    def test_link_down_cancels_pending_wakeup(self):
        engine = Engine()
        node = _make_node(engine, neighbors={2: Relationship.PEER})
        node._schedule_wakeup(2, 10.0)
        node.set_link_down(2)
        assert engine.pending_events == 0
        engine.run()
        assert engine.executed_events == 0

    def test_per_prefix_churn_cancels_instead_of_executing_noops(self):
        """Full-stack: per-prefix WRATE churn produces superseded wakeups,
        and the new kernel cancels them rather than executing no-ops."""
        config = BGPConfig(
            mrai=2.0,
            wrate=True,
            mrai_mode=MRAIMode.PER_PREFIX,
            link_delay=0.001,
            processing_time_max=0.01,
        )
        graph = generate_topology(baseline_params(100), seed=6)
        network = SimNetwork(graph, config, seed=6)
        stubs = [n for n in graph.node_ids if not graph.customers_of(n)]
        for prefix, origin in enumerate(stubs[:3]):
            network.originate(origin, prefix)
        network.run_to_convergence()
        for prefix, origin in enumerate(stubs[:3]):
            network.withdraw(origin, prefix)
        network.run_to_convergence()
        assert network.engine.cancelled_events > 0
        assert network.engine.pending_events == 0


class TestReuseCheckDedupe:
    # A long half-life keeps penalties from decaying between flap rounds,
    # so every node on the propagation path reliably crosses the
    # suppress threshold (withdrawal 1.0 + readvertisement 0.5 > 1.2).
    DAMPING = BGPConfig(
        mrai=2.0,
        link_delay=0.001,
        processing_time_max=0.01,
        damping=DampingConfig(
            enabled=True,
            suppress_threshold=1.2,
            reuse_threshold=0.5,
            half_life=60.0,
        ),
    )

    def _flap(self, network, origin, times):
        # Bounded windows, NOT run_to_convergence: draining the queue
        # would also execute every chained reuse check, clearing the
        # very suppression state the tests need to observe.
        for _ in range(times):
            network.withdraw(origin, 0)
            network.engine.run(until=network.engine.now + 3.0)
            network.originate(origin, 0)
            network.engine.run(until=network.engine.now + 3.0)

    def test_at_most_one_pending_reuse_check_per_node_and_prefix(self):
        graph = generate_topology(baseline_params(80), seed=8)
        network = SimNetwork(graph, self.DAMPING, seed=8)
        origin = [n for n in graph.node_ids if not graph.customers_of(n)][0]
        network.originate(origin, 0)
        network.run_to_convergence()
        self._flap(network, origin, 3)
        keys = [
            (callback.node.node_id, callback.prefix)
            for _, _, callback in network.engine.dump_pending()
            if isinstance(callback, DampingReuseCheck)
        ]
        assert keys, "scenario never scheduled a reuse check"
        assert len(keys) == len(set(keys)), "duplicate reuse checks queued"

    def test_suppressed_route_recovers_after_flaps_stop(self):
        graph = generate_topology(baseline_params(80), seed=8)
        network = SimNetwork(graph, self.DAMPING, seed=8)
        origin = [n for n in graph.node_ids if not graph.customers_of(n)][0]
        network.originate(origin, 0)
        network.run_to_convergence()
        self._flap(network, origin, 3)
        suppressed_nodes = [
            node
            for node in network.nodes.values()
            if any(record[4] for record in node._damper.dump_state())
        ]
        assert suppressed_nodes, "flapping never suppressed anything"
        # With the origin stable, the chained reuse checks must eventually
        # clear every suppression and restore the route everywhere.
        network.run_to_convergence()
        for node in suppressed_nodes:
            assert not any(record[4] for record in node._damper.dump_state())
            assert node.loc_rib.best(0) is not None


class TestAdoptedHandles:
    def test_restored_wakeup_entry_is_cancellable(self):
        """After a checkpoint restore the node must regain a live handle
        for its pending wakeup (supersession keeps working)."""
        import json

        from repro.checkpoint import restore_network, snapshot_network

        config = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)
        graph = generate_topology(baseline_params(60), seed=11)
        network = SimNetwork(graph, config, seed=11)
        stub = [n for n in graph.node_ids if not graph.customers_of(n)][-1]
        network.originate(stub, 0)
        for _ in range(150):
            if not network.engine.step():
                break
        payload = json.loads(json.dumps(snapshot_network(network)))
        restored = restore_network(graph, payload)
        adopted = 0
        for node in restored.nodes.values():
            for neighbor, at in node._wakeup_at.items():
                if at is None:
                    continue
                entry = node._wakeup_entries.get(neighbor)
                assert entry is not None, "pending wakeup has no live handle"
                assert entry[0] == at and isinstance(entry[2], MRAIWakeup)
                adopted += 1
        assert adopted > 0, "scenario left no pending wakeups to adopt"
