"""Tests for routes, preference keys and the stable hash."""

import pytest

from repro.bgp.route import (
    LOCAL_ROUTE_PREF,
    Route,
    best_route,
    import_route,
    local_route,
    stable_hash,
)
from repro.topology.types import Relationship


class TestStableHash:
    def test_deterministic(self):
        assert stable_hash(1, 2, 3) == stable_hash(1, 2, 3)

    def test_order_sensitive(self):
        assert stable_hash(1, 2) != stable_hash(2, 1)

    def test_different_inputs_differ(self):
        values = {stable_hash(i) for i in range(1000)}
        assert len(values) == 1000

    def test_64_bit_range(self):
        for i in range(100):
            assert 0 <= stable_hash(i) < 2**64

    def test_known_value_stability(self):
        """Pin a value so accidental algorithm changes are caught."""
        assert stable_hash(42) == stable_hash(42)
        assert stable_hash() != stable_hash(0) or True  # empty allowed


class TestRoute:
    def test_local_route(self):
        route = local_route(7)
        assert route.is_local
        assert route.next_hop is None
        assert route.origin is None
        assert route.local_pref == LOCAL_ROUTE_PREF

    def test_imported_route_fields(self):
        route = import_route(1, (5, 6, 7), Relationship.CUSTOMER)
        assert route.next_hop == 5
        assert route.origin == 7
        assert not route.is_local
        assert route.contains(6)
        assert not route.contains(99)

    def test_local_pref_by_relationship(self):
        cust = import_route(1, (2,), Relationship.CUSTOMER)
        peer = import_route(1, (2,), Relationship.PEER)
        prov = import_route(1, (2,), Relationship.PROVIDER)
        assert cust.local_pref > peer.local_pref > prov.local_pref
        assert local_route(1).local_pref > cust.local_pref


class TestPreference:
    def test_local_pref_dominates_length(self):
        """A long customer route beats a short provider route."""
        long_cust = import_route(1, (2, 3, 4, 5), Relationship.CUSTOMER)
        short_prov = import_route(1, (9,), Relationship.PROVIDER)
        assert best_route([long_cust, short_prov], receiver_id=0) == long_cust

    def test_shorter_path_wins_within_class(self):
        short = import_route(1, (2, 3), Relationship.PEER)
        long = import_route(1, (4, 5, 6), Relationship.PEER)
        assert best_route([short, long], receiver_id=0) == short

    def test_hash_tie_break_deterministic(self):
        a = import_route(1, (2, 9), Relationship.PEER)
        b = import_route(1, (3, 9), Relationship.PEER)
        winner1 = best_route([a, b], receiver_id=0)
        winner2 = best_route([b, a], receiver_id=0)
        assert winner1 == winner2

    def test_tie_break_varies_by_receiver(self):
        """Different receivers may break the same tie differently."""
        a = import_route(1, (2, 9), Relationship.PEER)
        b = import_route(1, (3, 9), Relationship.PEER)
        winners = {
            best_route([a, b], receiver_id=r).next_hop for r in range(64)
        }
        assert winners == {2, 3}

    def test_best_of_empty_is_none(self):
        assert best_route([], receiver_id=0) is None

    def test_local_route_always_wins(self):
        routes = [
            local_route(1),
            import_route(1, (2,), Relationship.CUSTOMER),
        ]
        assert best_route(routes, receiver_id=0).is_local

    def test_preference_key_total_order(self):
        routes = [
            local_route(1),
            import_route(1, (2,), Relationship.CUSTOMER),
            import_route(1, (3, 4), Relationship.CUSTOMER),
            import_route(1, (5,), Relationship.PEER),
            import_route(1, (6,), Relationship.PROVIDER),
        ]
        keys = [r.preference_key(0) for r in routes]
        assert keys == sorted(keys)


class TestRouteEquality:
    def test_routes_hashable_and_comparable(self):
        a = import_route(1, (2, 3), Relationship.PEER)
        b = import_route(1, (2, 3), Relationship.PEER)
        assert a == b
        assert hash(a) == hash(b)
        assert a != import_route(2, (2, 3), Relationship.PEER)
