"""Tests for the decision process."""

from repro.bgp.decision import rank, select_best
from repro.bgp.route import import_route, local_route
from repro.topology.types import Relationship

CUST = Relationship.CUSTOMER
PEER = Relationship.PEER
PROV = Relationship.PROVIDER


class TestSelectBest:
    def test_empty(self):
        assert select_best(0, []) is None

    def test_prefers_customer_over_peer_over_provider(self):
        cust = import_route(0, (1, 9), CUST)
        peer = import_route(0, (2, 9), PEER)
        prov = import_route(0, (3, 9), PROV)
        assert select_best(0, [prov, peer, cust]) == cust
        assert select_best(0, [prov, peer]) == peer

    def test_shortest_path_within_class(self):
        short = import_route(0, (1, 9), CUST)
        long = import_route(0, (2, 8, 9), CUST)
        assert select_best(0, [long, short]) == short

    def test_local_route_beats_all(self):
        routes = [local_route(0), import_route(0, (1,), CUST)]
        assert select_best(0, routes).is_local

    def test_input_order_irrelevant(self):
        a = import_route(0, (1, 9), PEER)
        b = import_route(0, (2, 9), PEER)
        assert select_best(0, [a, b]) == select_best(0, [b, a])


class TestRank:
    def test_rank_is_sorted_by_preference(self):
        routes = [
            import_route(0, (3, 9), PROV),
            import_route(0, (1, 9), CUST),
            import_route(0, (2, 9), PEER),
        ]
        ranked = rank(0, routes)
        assert ranked[0].local_pref > ranked[1].local_pref > ranked[2].local_pref

    def test_rank_head_equals_select_best(self):
        routes = [
            import_route(0, (3, 9), PROV),
            import_route(0, (1, 8, 9), PROV),
            import_route(0, (2, 9), PROV),
        ]
        assert rank(0, routes)[0] == select_best(0, routes)
