"""Tests for route-flap damping (RFC 2439 extension)."""

import pytest

from repro.bgp.config import DampingConfig
from repro.bgp.damping import FlapKind, RouteFlapDamper
from repro.errors import ParameterError


def damper(**overrides):
    defaults = dict(
        enabled=True,
        withdrawal_penalty=1.0,
        readvertisement_penalty=0.5,
        suppress_threshold=2.0,
        reuse_threshold=0.75,
        half_life=900.0,
    )
    defaults.update(overrides)
    return RouteFlapDamper(DampingConfig(**defaults))


class TestPenaltyAccumulation:
    def test_single_flap_below_threshold(self):
        d = damper()
        penalty = d.record_flap(5, 0, FlapKind.WITHDRAWAL, now=0.0)
        assert penalty == pytest.approx(1.0)
        assert not d.is_suppressed(5, 0, now=0.0)

    def test_repeated_flaps_suppress(self):
        d = damper()
        d.record_flap(5, 0, FlapKind.WITHDRAWAL, now=0.0)
        d.record_flap(5, 0, FlapKind.READVERTISEMENT, now=1.0)
        d.record_flap(5, 0, FlapKind.WITHDRAWAL, now=2.0)
        assert d.is_suppressed(5, 0, now=2.0)

    def test_penalty_decays_exponentially(self):
        d = damper()
        d.record_flap(5, 0, FlapKind.WITHDRAWAL, now=0.0)
        assert d.penalty(5, 0, now=900.0) == pytest.approx(0.5, rel=1e-6)
        assert d.penalty(5, 0, now=1800.0) == pytest.approx(0.25, rel=1e-6)

    def test_flap_kinds_have_distinct_penalties(self):
        d = damper()
        d.record_flap(1, 0, FlapKind.WITHDRAWAL, now=0.0)
        d.record_flap(2, 0, FlapKind.READVERTISEMENT, now=0.0)
        d.record_flap(3, 0, FlapKind.ATTRIBUTE_CHANGE, now=0.0)
        assert d.penalty(1, 0, 0.0) > d.penalty(2, 0, 0.0)
        assert d.penalty(2, 0, 0.0) == pytest.approx(d.penalty(3, 0, 0.0))


class TestReuse:
    def test_suppression_lifts_after_decay(self):
        d = damper()
        for t in (0.0, 1.0, 2.0, 3.0):
            d.record_flap(5, 0, FlapKind.WITHDRAWAL, now=t)
        assert d.is_suppressed(5, 0, now=4.0)
        wait = d.time_until_reuse(5, 0, now=4.0)
        assert wait is not None and wait > 0
        assert not d.is_suppressed(5, 0, now=4.0 + wait + 1.0)

    def test_time_until_reuse_none_when_not_suppressed(self):
        d = damper()
        d.record_flap(5, 0, FlapKind.WITHDRAWAL, now=0.0)
        assert d.time_until_reuse(5, 0, now=0.0) is None

    def test_max_suppress_time_caps_wait(self):
        d = damper(max_suppress_time=10.0, half_life=1e6)
        for t in (0.0, 1.0, 2.0, 3.0):
            d.record_flap(5, 0, FlapKind.WITHDRAWAL, now=t)
        assert d.is_suppressed(5, 0, now=4.0)
        # with an enormous half-life only the cap can lift suppression
        assert not d.is_suppressed(5, 0, now=20.0)


class TestDisabled:
    def test_disabled_damper_never_suppresses(self):
        d = damper(enabled=False)
        for t in range(10):
            d.record_flap(5, 0, FlapKind.WITHDRAWAL, now=float(t))
        assert not d.is_suppressed(5, 0, now=10.0)
        assert not d.enabled


class _Untouchable:
    """Stands in for a PenaltyRecord that must never be inspected."""

    def __getattr__(self, name):
        raise AssertionError(
            f"a record for an unrelated prefix was touched (attribute {name!r})"
        )


class TestPerPrefixIndex:
    """The records table is indexed prefix-first so per-prefix scans never
    visit other prefixes' records — the regression that made
    ``earliest_reuse`` O(all records) under multi-prefix workloads."""

    def test_earliest_reuse_ignores_other_prefixes_records(self):
        d = damper()
        for t in (0.0, 1.0, 2.0):
            d.record_flap(1, 0, FlapKind.WITHDRAWAL, now=t)
            d.record_flap(2, 0, FlapKind.WITHDRAWAL, now=t)
        assert d.is_suppressed(1, 0, now=2.0)
        # White-box: plant 10k records under *other* prefixes that blow up
        # on any attribute access.  A flat-table scan would trip them.
        for other in range(1, 10_001):
            d._records[other] = {1: _Untouchable()}
        wait = d.earliest_reuse(0, now=2.0)
        assert wait is not None and wait > 0

    def test_point_queries_ignore_other_prefixes_records(self):
        d = damper()
        d.record_flap(1, 0, FlapKind.WITHDRAWAL, now=0.0)
        for other in range(1, 1001):
            d._records[other] = {1: _Untouchable()}
        assert d.penalty(1, 0, now=0.0) == pytest.approx(1.0)
        assert not d.is_suppressed(1, 0, now=0.0)
        assert d.time_until_reuse(1, 0, now=0.0) is None

    def test_earliest_reuse_is_min_over_neighbors(self):
        d = damper()
        # Neighbour 1 accumulates more penalty than neighbour 2, so 2
        # decays back below the reuse threshold first.
        for t in (0.0, 1.0, 2.0, 3.0):
            d.record_flap(1, 0, FlapKind.WITHDRAWAL, now=t)
        for t in (0.0, 1.0, 2.0):
            d.record_flap(2, 0, FlapKind.WITHDRAWAL, now=t)
        assert d.is_suppressed(1, 0, now=4.0) and d.is_suppressed(2, 0, now=4.0)
        wait = d.earliest_reuse(0, now=4.0)
        assert wait == pytest.approx(d.time_until_reuse(2, 0, now=4.0))
        assert wait < d.time_until_reuse(1, 0, now=4.0)

    def test_earliest_reuse_none_without_suppressed_records(self):
        d = damper()
        assert d.earliest_reuse(0, now=0.0) is None
        d.record_flap(1, 0, FlapKind.WITHDRAWAL, now=0.0)
        assert d.earliest_reuse(0, now=0.0) is None

    def test_earliest_reuse_unsuppresses_decayed_records(self):
        d = damper(half_life=10.0)
        for t in (0.0, 1.0, 2.0):
            d.record_flap(1, 0, FlapKind.WITHDRAWAL, now=t)
        assert d.is_suppressed(1, 0, now=2.0)
        # Long after the penalty decayed away, the sweep both reports
        # nothing suppressed and clears the stale flag in place.
        assert d.earliest_reuse(0, now=500.0) is None
        assert not d._records[0][1].suppressed

    def test_dump_load_round_trip_preserves_rows(self):
        d = damper()
        d.record_flap(1, 0, FlapKind.WITHDRAWAL, now=0.0)
        d.record_flap(2, 0, FlapKind.WITHDRAWAL, now=1.0)
        d.record_flap(1, 7, FlapKind.READVERTISEMENT, now=2.0)
        rows = d.dump_state()
        assert all(len(row) == 5 for row in rows)  # flat checkpoint layout
        restored = damper()
        restored.load_state(rows)
        assert restored.dump_state() == rows
        assert restored.penalty(1, 0, now=2.0) == pytest.approx(
            d.penalty(1, 0, now=2.0)
        )


class TestConfigValidation:
    def test_reuse_must_be_below_suppress(self):
        with pytest.raises(ParameterError):
            DampingConfig(suppress_threshold=1.0, reuse_threshold=1.5)

    def test_half_life_positive(self):
        with pytest.raises(ParameterError):
            DampingConfig(half_life=0.0)

    def test_negative_penalty_rejected(self):
        with pytest.raises(ParameterError):
            DampingConfig(withdrawal_penalty=-1.0)
