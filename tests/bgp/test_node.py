"""Tests for the BGP speaker, driven through a real engine + network."""

import pytest

from repro.bgp.config import BGPConfig
from repro.errors import SimulationError
from repro.sim.network import SimNetwork
from repro.topology.graph import ASGraph
from repro.topology.types import NodeType, Relationship


def converge(network):
    network.run_to_convergence()
    return network


def pair_network(config=None):
    graph = ASGraph()
    graph.add_node(0, NodeType.T, [0])
    graph.add_node(1, NodeType.C, [0])
    graph.add_transit_link(1, 0)
    return SimNetwork(graph, config or BGPConfig(mrai=1.0), seed=1)


class TestOriginBehavior:
    def test_originate_and_propagate(self):
        network = pair_network()
        network.originate(1, 0)
        converge(network)
        best = network.node(0).best_route(0)
        assert best is not None
        assert best.path == (1,)

    def test_withdraw_clears_routes(self):
        network = pair_network()
        network.originate(1, 0)
        converge(network)
        network.withdraw(1, 0)
        converge(network)
        assert network.node(0).best_route(0) is None
        assert network.node(1).best_route(0) is None

    def test_withdraw_unoriginated_prefix_raises(self):
        network = pair_network()
        with pytest.raises(SimulationError):
            network.withdraw(1, 0)

    def test_originates_flag(self):
        network = pair_network()
        network.originate(1, 0)
        assert network.node(1).originates(0)
        assert not network.node(0).originates(0)


class TestPolicyPropagation:
    def test_peer_route_not_reexported_to_peer(self, diamond, fast_config):
        """T1 learns C4's prefix via customers; T0 must not pass a
        peer-learned route on to another peer (here there is none, so we
        check the diamond converges with valley-free paths only)."""
        network = SimNetwork(diamond, fast_config, seed=3)
        network.originate(4, 0)
        converge(network)
        for node_id in (0, 1, 2, 3):
            best = network.node(node_id).best_route(0)
            assert best is not None
            assert best.origin == 4

    def test_customer_preferred_over_peer(self, diamond, fast_config):
        """T0 hears C4's route from customers M2/M3 and from peer T1; it
        must select a customer route."""
        network = SimNetwork(diamond, fast_config, seed=3)
        network.originate(4, 0)
        converge(network)
        best = network.node(0).best_route(0)
        assert best.local_pref == 2  # customer-learned
        assert best.next_hop in (2, 3)

    def test_as_path_has_no_loops(self, small_baseline, fast_config):
        network = SimNetwork(small_baseline, fast_config, seed=5)
        origin = small_baseline.nodes_of_type(NodeType.C)[0]
        network.originate(origin, 0)
        converge(network)
        for node in network.nodes.values():
            best = node.best_route(0)
            if best is not None and not best.is_local:
                assert len(set(best.path)) == len(best.path)
                assert best.path[-1] == origin
                assert node.node_id not in best.path

    def test_stub_never_transits(self, fast_config):
        """A multihomed C stub must not carry traffic between providers."""
        graph = ASGraph()
        graph.add_node(0, NodeType.M, [0])
        graph.add_node(1, NodeType.M, [0])
        graph.add_node(2, NodeType.C, [0])  # multihomed stub
        graph.add_node(3, NodeType.T, [0])
        graph.add_transit_link(0, 3)
        graph.add_transit_link(2, 0)
        graph.add_transit_link(2, 1)
        # provider 1 is NOT connected to the core: its only path to a
        # prefix of node 3 would be through its customer 2 (a valley).
        network = SimNetwork(graph, fast_config, seed=2)
        network.originate(3, 0)
        converge(network)
        assert network.node(0).best_route(0) is not None
        assert network.node(2).best_route(0) is not None
        # 2 learned the route from provider 0, so it must not export it to
        # provider 1.
        assert network.node(1).best_route(0) is None


class TestMessageValidation:
    def test_wrong_receiver_rejected(self):
        from repro.bgp.messages import announcement

        network = pair_network()
        with pytest.raises(SimulationError, match="addressed"):
            network.node(0).receive(announcement(1, 1, 0, (1,)))

    def test_unknown_sender_rejected(self):
        from repro.bgp.messages import announcement

        network = pair_network()
        with pytest.raises(SimulationError, match="non-neighbor"):
            network.node(0).receive(announcement(5, 0, 0, (5,)))


class TestLoopSuppression:
    def test_received_path_containing_self_ignored(self):
        """Receiver-side loop detection treats the route as unreachable."""
        from repro.bgp.messages import announcement

        network = pair_network()
        node = network.node(0)
        node.receive(announcement(1, 0, 0, (1, 0, 9)))
        network.run_to_convergence()
        assert node.best_route(0) is None


class TestLinkState:
    def test_link_down_flushes_routes(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=4)
        network.originate(4, 0)
        converge(network)
        # fail C4's link to M2: M2 loses its customer route
        network.node(4).set_link_down(2)
        network.node(2).set_link_down(4)
        converge(network)
        best = network.node(2).best_route(0)
        assert best is not None
        assert best.next_hop == 0  # re-routed via provider T0
        assert network.node(2).link_is_down(4)

    def test_link_up_restores(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=4)
        network.originate(4, 0)
        converge(network)
        network.node(4).set_link_down(2)
        network.node(2).set_link_down(4)
        converge(network)
        network.node(4).set_link_up(2)
        network.node(2).set_link_up(4)
        converge(network)
        best = network.node(2).best_route(0)
        assert best.next_hop == 4  # direct customer route again

    def test_down_unknown_neighbor_raises(self, diamond_network):
        with pytest.raises(SimulationError):
            diamond_network.node(0).set_link_down(99)

    def test_down_is_idempotent(self, diamond_network):
        node = diamond_network.node(0)
        node.set_link_down(1)
        node.set_link_down(1)
        assert node.link_is_down(1)
        node.set_link_up(1)
        node.set_link_up(1)
        assert not node.link_is_down(1)


class TestDampingIntegration:
    def test_attribute_change_penalized(self):
        """Same sender re-announcing a different path is a 0.5 flap."""
        from repro.bgp.config import DampingConfig
        from repro.bgp.messages import announcement

        damping = DampingConfig(enabled=True)
        network = pair_network(BGPConfig(mrai=1.0, damping=damping))
        node = network.node(0)
        node.receive(announcement(1, 0, 0, (1, 5)))
        network.run_to_convergence()
        node.receive(announcement(1, 0, 0, (1, 6)))
        network.run_to_convergence()
        now = network.engine.now
        assert node._damper.penalty(1, 0, now) == pytest.approx(1.0, abs=0.1)

    def test_identical_reannouncement_not_penalized(self):
        from repro.bgp.config import DampingConfig
        from repro.bgp.messages import announcement

        damping = DampingConfig(enabled=True)
        network = pair_network(BGPConfig(mrai=1.0, damping=damping))
        node = network.node(0)
        node.receive(announcement(1, 0, 0, (1, 5)))
        network.run_to_convergence()
        penalty_after_first = node._damper.penalty(1, 0, network.engine.now)
        node.receive(announcement(1, 0, 0, (1, 5)))
        network.run_to_convergence()
        assert node._damper.penalty(1, 0, network.engine.now) <= penalty_after_first

    def test_damping_disabled_records_nothing(self):
        from repro.bgp.messages import announcement, withdrawal

        network = pair_network(BGPConfig(mrai=1.0))
        node = network.node(0)
        node.receive(announcement(1, 0, 0, (1, 5)))
        node.receive(withdrawal(1, 0, 0))
        network.run_to_convergence()
        assert node._damper.penalty(1, 0, network.engine.now) == 0.0


class TestIntrospection:
    def test_advertised_to_reflects_wire_state(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=6)
        network.originate(4, 0)
        network.run_to_convergence()
        origin = network.node(4)
        # the origin announced (4,) to both providers
        assert origin.advertised_to(2, 0) == ()
        # ... path stored without the owner prepended (empty = local)
        m2 = network.node(2)
        assert m2.advertised_to(0, 0) is not None

    def test_best_change_count_tracks_flaps(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=6)
        network.originate(4, 0)
        network.run_to_convergence()
        t0 = network.node(0)
        before = t0.best_change_count.get(0, 0)
        assert before >= 1
        network.withdraw(4, 0)
        network.run_to_convergence()
        network.originate(4, 0)
        network.run_to_convergence()
        assert t0.best_change_count[0] >= before + 2

    def test_channel_accessor(self, diamond_network):
        channel = diamond_network.node(0).channel(1)
        assert channel.owner == 0 and channel.neighbor == 1

    def test_busy_time_accumulates(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=6)
        network.originate(4, 0)
        network.run_to_convergence()
        node = network.node(0)
        assert node.busy_time > 0
        assert node.max_queue_length >= 1

    def test_busy_time_excludes_interrupted_service(self, diamond):
        # Regression: busy_time used to accrue the full drawn service delay
        # at _start_service, so a run halted mid-service reported more busy
        # seconds than simulated seconds — occupancy (busy_time / horizon)
        # above 1.0 in the ext_load accounting.  Accrual-on-completion
        # bounds every node's busy_time by the simulated horizon.
        config = BGPConfig(
            mrai=0.0, link_delay=0.0001, processing_time_max=10.0
        )
        network = SimNetwork(diamond, config, seed=6)
        network.originate(4, 0)
        horizon = 0.002  # far shorter than a typical drawn service time
        network.engine.run(until=horizon)
        assert any(node._busy for node in network.nodes.values())
        for node in network.nodes.values():
            assert node.busy_time <= network.engine.now

    def test_busy_time_matches_horizonless_run(self, diamond, fast_config):
        # Fully drained runs complete every started service, so the fix
        # changes nothing there: interrupt-and-continue equals one shot.
        one_shot = SimNetwork(diamond, fast_config, seed=6)
        one_shot.originate(4, 0)
        one_shot.run_to_convergence()

        stepped = SimNetwork(diamond, fast_config, seed=6)
        stepped.originate(4, 0)
        stepped.engine.run(until=0.002)
        stepped.run_to_convergence()
        for node_id in stepped.nodes:
            assert stepped.node(node_id).busy_time == pytest.approx(
                one_shot.node(node_id).busy_time
            )


class TestQueueing:
    def test_queue_length_visible(self):
        from repro.bgp.messages import announcement

        network = pair_network()
        node = network.node(0)
        node.receive(announcement(1, 0, 0, (1,)))
        node.receive(announcement(1, 0, 1, (1,)))
        assert node.queue_length == 2
        network.run_to_convergence()
        assert node.queue_length == 0
        assert node.processed_count == 2
