"""Property-based tests of the MRAI output channel.

Two invariants must hold under ANY interleaving of target changes:

1. **Rate limiting**: consecutive rate-limited sends to the same
   neighbour are separated by at least the (un-jittered) MRAI interval;
   NO-WRATE withdrawals are exempt.
2. **Eventual consistency**: once the caller stops changing targets and
   the queue drains, what the neighbour was last told equals the last
   target set.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.config import BGPConfig, MRAIMode, SendDiscipline
from repro.bgp.mrai import OutputChannel

MRAI = 10.0


@st.composite
def channel_script(draw):
    """A random sequence of (time-gap, prefix, target) operations."""
    config = BGPConfig(
        mrai=MRAI,
        jitter_low=1.0,
        jitter_high=1.0,
        wrate=draw(st.booleans()),
        mrai_mode=draw(st.sampled_from(list(MRAIMode))),
        discipline=draw(st.sampled_from(list(SendDiscipline))),
    )
    ops = draw(
        st.lists(
            st.tuples(
                st.floats(min_value=0.01, max_value=25.0),  # time gap
                st.integers(min_value=0, max_value=2),  # prefix
                st.one_of(  # target: None (withdraw) or a path
                    st.none(),
                    st.lists(
                        st.integers(min_value=5, max_value=9),
                        min_size=1,
                        max_size=3,
                    ).map(tuple),
                ),
            ),
            min_size=1,
            max_size=25,
        )
    )
    return config, ops


def drive(config, ops):
    """Execute the script; returns (send log, final advertised, last targets)."""
    channel = OutputChannel(owner=1, neighbor=2, config=config, rng=random.Random(0))
    sends = []  # (time, message)
    pending_wakeups = []
    now = 0.0
    last_target = {}

    def flush_wakeups(upto):
        nonlocal pending_wakeups
        while pending_wakeups and min(pending_wakeups) <= upto:
            at = min(pending_wakeups)
            pending_wakeups = [w for w in pending_wakeups if w != at]
            messages, nxt = channel.wakeup(at)
            sends.extend((at, m) for m in messages)
            if nxt is not None:
                pending_wakeups.append(nxt)

    for gap, prefix, target in ops:
        now += gap
        flush_wakeups(now)
        last_target[prefix] = target
        messages, wakeup = channel.set_target(prefix, target, now)
        sends.extend((now, m) for m in messages)
        if wakeup is not None:
            pending_wakeups.append(wakeup)
    # drain
    flush_wakeups(now + 100 * MRAI)
    return sends, channel, last_target


class TestChannelProperties:
    @given(script=channel_script())
    @settings(max_examples=200, deadline=None)
    def test_rate_limited_sends_are_separated(self, script):
        config, ops = script
        sends, _, _ = drive(config, ops)
        limited = [
            (t, m)
            for t, m in sends
            if not (m.is_withdrawal and not config.wrate)
        ]
        if config.mrai_mode is MRAIMode.PER_INTERFACE:
            groups = {None: limited}
        else:
            groups = {}
            for t, m in limited:
                groups.setdefault(m.prefix, []).append((t, m))
        for group in groups.values():
            times = sorted(t for t, _ in group)
            for a, b in zip(times, times[1:]):
                if b != a:  # same-instant batch flush is one timer firing
                    assert b - a >= MRAI - 1e-9, (times, config)

    @given(script=channel_script())
    @settings(max_examples=200, deadline=None)
    def test_eventual_consistency(self, script):
        config, ops = script
        _, channel, last_target = drive(config, ops)
        assert channel.pending_count == 0
        for prefix, target in last_target.items():
            assert channel.advertised(prefix) == target

    @given(script=channel_script())
    @settings(max_examples=100, deadline=None)
    def test_wire_state_tracks_sends(self, script):
        """Replaying the send log yields the channel's advertised view."""
        config, ops = script
        sends, channel, last_target = drive(config, ops)
        replayed = {}
        for _, message in sends:
            if message.is_withdrawal:
                replayed[message.prefix] = None
            else:
                # channel prepends the owner to the stored target path
                replayed[message.prefix] = message.path[1:]
        for prefix in last_target:
            assert replayed.get(prefix) == channel.advertised(prefix)