"""PER_PREFIX gate hygiene under multi-prefix churn.

Every prefix that ever passed through a rate-limited send arms a gate;
without pruning, the per-channel gate dict grows with the lifetime union
of churned prefixes.  The wakeup path drops expired gates (an expired
gate is indistinguishable from a missing one) and reports the survivor
count through the ``mrai.prefix_gates`` telemetry gauge.
"""

import random

from repro.bgp.config import BGPConfig, MRAIMode
from repro.bgp.mrai import OutputChannel
from repro.obs.telemetry import Telemetry
from repro.prefix.prefix import make_prefix

PREFIXES = [make_prefix(index << 16, 16) for index in range(40)]


def channel(telemetry=None, **overrides):
    config = BGPConfig(
        mrai=2.0, mrai_mode=MRAIMode.PER_PREFIX, jitter_low=1.0, jitter_high=1.0,
        **overrides,
    )
    kwargs = {} if telemetry is None else {"telemetry": telemetry}
    return OutputChannel(1, 2, config, random.Random(5), **kwargs)


def churn(ch, *, rounds=6, step=5.0):
    """Announce/withdraw every prefix each round, servicing wakeups."""
    now = 0.0
    wakeups = []
    for round_index in range(rounds):
        for index, prefix in enumerate(PREFIXES):
            target = None if (round_index + index) % 2 else (3, 4)
            _messages, wakeup_at = ch.set_target(prefix, target, now)
            if wakeup_at is not None:
                wakeups.append(wakeup_at)
        while wakeups and min(wakeups) <= now + step:
            at = min(wakeups)
            wakeups = [w for w in wakeups if w > at]
            _messages, next_wakeup = ch.wakeup(at)
            if next_wakeup is not None:
                wakeups.append(next_wakeup)
        now += step
    # Drain: service every remaining wakeup, then one final sweep well
    # past the last gate so all expired gates are pruned.
    while wakeups:
        at = min(wakeups)
        wakeups = [w for w in wakeups if w > at]
        _messages, next_wakeup = ch.wakeup(at)
        if next_wakeup is not None:
            wakeups.append(next_wakeup)
    ch.wakeup(now + 1000.0)
    return ch


class TestGatePruning:
    def test_gate_table_is_bounded_after_churn(self):
        ch = churn(channel())
        # All 40 prefixes were rate-limited repeatedly; once drained and
        # swept, no expired gate may linger.
        assert ch.pending_count == 0
        assert len(ch._prefix_gates) == 0

    def test_pending_prefixes_keep_their_gates(self):
        ch = channel()
        _m, wakeup_at = ch.set_target(PREFIXES[0], (3,), 0.0)
        ch.wakeup(wakeup_at)  # sends, re-arms the gate
        # NO-WRATE would send a withdrawal immediately; a changed path
        # announcement always queues behind the closed gate.
        _m, _w = ch.set_target(PREFIXES[0], (3, 9), wakeup_at + 0.1)
        # The queued update's own (future) gate must survive a sweep.
        _m, next_wakeup = ch.wakeup(wakeup_at + 0.2)
        assert ch.pending_count == 1
        assert PREFIXES[0] in ch._prefix_gates
        assert next_wakeup == ch._prefix_gates[PREFIXES[0]]

    def test_gauge_records_the_high_water_mark(self):
        hub = Telemetry()
        churn(channel(telemetry=hub))
        high_water = hub.gauges["mrai.prefix_gates"]
        # Every live gate at some wakeup was counted, and the mark can
        # never exceed the number of distinct prefixes churned.
        assert 1 <= high_water <= len(PREFIXES)

    def test_gauge_is_monotone_max(self):
        hub = Telemetry()
        hub.on_prefix_gates(7)
        hub.on_prefix_gates(3)
        assert hub.gauges["mrai.prefix_gates"] == 7.0
        hub.on_prefix_gates(11)
        assert hub.gauges["mrai.prefix_gates"] == 11.0
