"""Tests for measured snapshot sequences and the measured sweep."""

import gzip
import shutil
from pathlib import Path

import pytest

from repro.bgp.config import BGPConfig
from repro.errors import MeasuredImportError
from repro.measured import load_snapshot_sequence, run_measured_sweep

DATA = Path(__file__).parent.parent / "topology" / "data"
FIXTURE = DATA / "fixture_serial1.txt"

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


@pytest.fixture
def snapshot_dir(tmp_path):
    """A directory of three dated snapshots (one gzip'd), out of order."""
    shutil.copy(FIXTURE, tmp_path / "20040105.as-rel.txt")
    shutil.copy(FIXTURE, tmp_path / "20040301.as-rel.txt")
    (tmp_path / "20040202.as-rel.txt.gz").write_bytes(
        gzip.compress(FIXTURE.read_bytes())
    )
    (tmp_path / "README.md").write_text("not a snapshot\n")
    return tmp_path


class TestLoadSequence:
    def test_directory_sorted_by_label(self, snapshot_dir):
        snapshots = load_snapshot_sequence(snapshot_dir)
        assert [s.label for s in snapshots] == [
            "20040105",
            "20040202",
            "20040301",
        ]
        assert all(s.n == 145 for s in snapshots)
        assert all(s.report.connected for s in snapshots)

    def test_explicit_list_keeps_order(self, snapshot_dir):
        paths = [
            snapshot_dir / "20040301.as-rel.txt",
            snapshot_dir / "20040105.as-rel.txt",
        ]
        snapshots = load_snapshot_sequence(paths)
        assert [s.label for s in snapshots] == ["20040301", "20040105"]

    def test_empty_directory_raises(self, tmp_path):
        with pytest.raises(MeasuredImportError, match="no snapshots"):
            load_snapshot_sequence(tmp_path)

    def test_file_instead_of_directory_raises(self):
        with pytest.raises(MeasuredImportError, match="not a directory"):
            load_snapshot_sequence(FIXTURE)


class TestMeasuredSweep:
    def test_sweep_is_deterministic(self, snapshot_dir):
        snapshots = load_snapshot_sequence(snapshot_dir)[:2]
        first = run_measured_sweep(
            snapshots, FAST, num_origins=3, seed=11
        )
        second = run_measured_sweep(
            snapshots, FAST, num_origins=3, seed=11
        )
        assert len(first) == 2
        assert [s.origins for s in first] == [s.origins for s in second]
        assert [s.measured_messages for s in first] == [
            s.measured_messages for s in second
        ]
        assert first[0].measured_messages > 0

    def test_empty_sequence_raises(self):
        with pytest.raises(MeasuredImportError, match="empty"):
            run_measured_sweep([], FAST)
