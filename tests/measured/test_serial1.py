"""Tests for the CAIDA serial-1 importer."""

from pathlib import Path

import pytest

from repro.errors import MeasuredImportError
from repro.measured import load_serial1, parse_serial1_text
from repro.measured.serial1 import component_sizes
from repro.topology.serialization import save_as_rel
from repro.topology.types import Relationship

DATA = Path(__file__).parent.parent / "topology" / "data"
FIXTURE = DATA / "fixture_serial1.txt"
FIXTURE_GZ = DATA / "fixture_serial1.txt.gz"
MALFORMED = DATA / "fixture_serial1_malformed.txt"


class TestFixtureImport:
    def test_fixture_imports_strict(self):
        graph, report = load_serial1(FIXTURE)
        assert len(graph) == 145
        assert report.edges_parsed == 205
        assert report.edges_kept == 205
        assert report.edges_dropped == 0
        assert report.transit_edges == 175
        assert report.peer_edges == 30
        assert report.comment_lines == 4
        assert report.connected
        assert report.components == (145,)

    def test_gzip_copy_is_identical(self):
        plain, report_plain = load_serial1(FIXTURE)
        gz, report_gz = load_serial1(FIXTURE_GZ)
        assert list(plain.edges()) == list(gz.edges())
        assert report_plain.as_numbers == report_gz.as_numbers
        assert [plain.adjacency_order(v) for v in plain.node_ids] == [
            gz.adjacency_order(v) for v in gz.node_ids
        ]

    def test_import_is_deterministic(self):
        first_graph, first_report = load_serial1(FIXTURE)
        second_graph, second_report = load_serial1(FIXTURE)
        assert list(first_graph.edges()) == list(second_graph.edges())
        assert first_report == second_report

    def test_renumbering_is_dense_and_sorted(self):
        graph, report = load_serial1(FIXTURE)
        assert sorted(graph.node_ids) == list(range(len(graph)))
        assert report.as_numbers == tuple(sorted(report.as_numbers))
        assert len(set(report.as_numbers)) == len(report.as_numbers)

    def test_round_trip_through_save_as_rel(self, tmp_path):
        graph, _ = load_serial1(FIXTURE)
        out = tmp_path / "roundtrip.txt"
        save_as_rel(graph, out)
        again, report = load_serial1(out)
        assert len(again) == len(graph)
        assert sorted(
            (min(u, v), max(u, v), rel) for u, v, rel in graph.edges()
        ) == sorted(
            (min(u, v), max(u, v), rel) for u, v, rel in again.edges()
        )
        assert report.edges_dropped == 0


class TestMalformedInput:
    def test_malformed_fixture_raises_with_line_number(self):
        with pytest.raises(MeasuredImportError, match=r":4:"):
            load_serial1(MALFORMED)

    def test_malformed_raises_even_lenient(self):
        with pytest.raises(MeasuredImportError):
            load_serial1(MALFORMED, strict=False)

    def test_bad_field_count(self):
        with pytest.raises(MeasuredImportError, match="expected"):
            parse_serial1_text("1|2\n")

    def test_non_integer_asn(self):
        with pytest.raises(MeasuredImportError, match="non-integer"):
            parse_serial1_text("a|2|-1\n")

    def test_unknown_relationship_code(self):
        with pytest.raises(MeasuredImportError, match="relationship code"):
            parse_serial1_text("1|2|5\n")

    def test_missing_file(self, tmp_path):
        with pytest.raises(MeasuredImportError, match="cannot read"):
            load_serial1(tmp_path / "nope.txt")

    def test_corrupt_gzip(self, tmp_path):
        path = tmp_path / "bad.gz"
        path.write_bytes(b"\x1f\x8b not actually gzip")
        with pytest.raises(MeasuredImportError, match="gzip"):
            load_serial1(path)


class TestValidation:
    def test_self_loop_strict_raises(self):
        with pytest.raises(MeasuredImportError, match="self-loop"):
            parse_serial1_text("1|1|-1\n2|3|-1\n")

    def test_duplicate_strict_raises(self):
        with pytest.raises(MeasuredImportError, match="duplicate"):
            parse_serial1_text("2|3|-1\n2|3|-1\n")

    def test_conflict_strict_raises(self):
        with pytest.raises(MeasuredImportError, match="conflicting"):
            parse_serial1_text("2|3|-1\n3|2|-1\n")

    def test_lenient_counts_and_drops(self):
        text = "1|1|-1\n2|3|-1\n2|3|-1\n3|2|-1\n2|3|0\n4|5|0\n3|6|-1\n"
        graph, report = parse_serial1_text(text, strict=False)
        assert report.self_loops == 1
        assert report.duplicate_edges == 1
        assert report.conflicting_edges == 2  # reversed transit + peer claim
        assert report.edges_parsed == 7
        assert report.edges_kept == 3
        # First claim wins: 2->3 stays a transit edge.
        rels = {
            (min(u, v), max(u, v)): rel for u, v, rel in graph.edges()
        }
        assert rels[(0, 1)] is not Relationship.PEER

    def test_disconnected_components_reported(self):
        graph, report = parse_serial1_text("1|2|-1\n3|4|-1\n5|6|0\n")
        assert not report.connected
        assert report.components == (2, 2, 2)

    def test_component_sizes_largest_first(self):
        graph, _ = parse_serial1_text("1|2|-1\n1|3|-1\n7|8|0\n")
        assert component_sizes(graph) == (3, 2)


class TestTypeInference:
    def test_types_follow_structure(self):
        # 10 provides 20 and 30; 20 provides 40; 30 peers with 20.
        text = "10|20|-1\n10|30|-1\n20|40|-1\n20|30|0\n"
        graph, report = parse_serial1_text(text)
        by_asn = {
            asn: graph.node(index).node_type
            for index, asn in enumerate(report.as_numbers)
        }
        assert by_asn[10].value == "T"  # no providers
        assert by_asn[20].value == "M"  # has provider + customer
        assert by_asn[30].value == "CP"  # has provider + peer, no customer
        assert by_asn[40].value == "C"  # pure stub
