"""Property-based integration tests: convergence correctness under
randomized topologies, configurations and event sequences."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.config import BGPConfig, MRAIMode, SendDiscipline
from repro.core.reference import steady_state_routes
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType


def fast_config(**overrides):
    defaults = dict(mrai=1.0, link_delay=0.001, processing_time_max=0.01)
    defaults.update(overrides)
    return BGPConfig(**defaults)


@st.composite
def sim_setup(draw):
    topo_seed = draw(st.integers(min_value=0, max_value=10**6))
    sim_seed = draw(st.integers(min_value=0, max_value=10**6))
    n = draw(st.integers(min_value=60, max_value=140))
    config = fast_config(
        wrate=draw(st.booleans()),
        mrai_mode=draw(st.sampled_from(list(MRAIMode))),
        discipline=draw(st.sampled_from(list(SendDiscipline))),
    )
    return topo_seed, sim_seed, n, config


class TestConvergenceCorrectness:
    @given(setup=sim_setup())
    @settings(max_examples=25, deadline=None)
    def test_converged_routes_match_oracle(self, setup):
        """Whatever the MRAI variant, the *final* routes are the unique
        Gao-Rexford steady state (category + path length per node)."""
        topo_seed, sim_seed, n, config = setup
        graph = generate_topology(baseline_params(n), seed=topo_seed)
        origin = graph.nodes_of_type(NodeType.C)[0]
        network = SimNetwork(graph, config, seed=sim_seed)
        network.originate(origin, 0)
        network.run_to_convergence()
        oracle = steady_state_routes(graph, origin)
        assert set(network.nodes_with_route(0)) == set(oracle)
        for node_id, expected in oracle.items():
            best = network.node(node_id).best_route(0)
            assert len(best.path) == expected.length
            if expected.category is not None:
                node = network.node(node_id)
                assert node.neighbors[best.next_hop] is expected.category

    @given(setup=sim_setup())
    @settings(max_examples=15, deadline=None)
    def test_withdraw_reconverges_to_empty(self, setup):
        """After withdrawing, no node may keep a stale route."""
        topo_seed, sim_seed, n, config = setup
        graph = generate_topology(baseline_params(n), seed=topo_seed)
        origin = graph.nodes_of_type(NodeType.C)[0]
        network = SimNetwork(graph, config, seed=sim_seed)
        network.originate(origin, 0)
        network.run_to_convergence()
        network.withdraw(origin, 0)
        network.run_to_convergence()
        assert network.nodes_with_route(0) == []
        # and all output queues have drained
        for node in network.nodes.values():
            for neighbor in node.neighbors:
                assert node.channel(neighbor).pending_count == 0

    @given(setup=sim_setup())
    @settings(max_examples=10, deadline=None)
    def test_flap_is_idempotent(self, setup):
        """withdraw + re-announce returns to exactly the previous state."""
        topo_seed, sim_seed, n, config = setup
        graph = generate_topology(baseline_params(n), seed=topo_seed)
        origin = graph.nodes_of_type(NodeType.C)[0]
        network = SimNetwork(graph, config, seed=sim_seed)
        network.originate(origin, 0)
        network.run_to_convergence()
        before = {
            node_id: network.node(node_id).best_route(0)
            for node_id in network.nodes
        }
        network.withdraw(origin, 0)
        network.run_to_convergence()
        network.originate(origin, 0)
        network.run_to_convergence()
        after = {
            node_id: network.node(node_id).best_route(0)
            for node_id in network.nodes
        }
        # the decision process is deterministic, so the stable state is
        # unique in (category, length); paths may differ only in hash ties
        for node_id in before:
            b, a = before[node_id], after[node_id]
            assert (b is None) == (a is None)
            if b is not None:
                assert len(b.path) == len(a.path)
                assert b.local_pref == a.local_pref
