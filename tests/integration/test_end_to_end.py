"""Integration tests: the paper's headline shape claims on small networks.

These run real generator → simulator → factor pipelines at sizes where a
test suite stays fast, asserting the claims that are robust at that scale
(the full-scale claims are exercised by the benchmark harness).
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.cevent import run_c_event_experiment
from repro.core.factors import predicted_u
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.scenarios import scenario_params
from repro.topology.types import NodeType, Relationship

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


@pytest.fixture(scope="module")
def baseline_stats():
    graph = generate_topology(baseline_params(400), seed=11)
    return run_c_event_experiment(graph, FAST, num_origins=6, seed=11)


class TestFig4Shapes:
    def test_type_ordering(self, baseline_stats):
        """U(T) > U(M) >= U(CP) > U(C) (Fig. 4)."""
        u = {t: baseline_stats.u(t) for t in baseline_stats.per_type}
        assert u[NodeType.T] > u[NodeType.C]
        assert u[NodeType.M] > u[NodeType.C]
        assert u[NodeType.T] >= 0.9 * u[NodeType.M]

    def test_everyone_hears_both_phases(self, baseline_stats):
        for node_type in (NodeType.T, NodeType.M):
            assert baseline_stats.down_updates_per_type[node_type] > 0
            assert baseline_stats.up_updates_per_type[node_type] > 0


class TestEq1Identity:
    def test_u_equals_mqe_for_every_type(self, baseline_stats):
        """Eq. (1) must hold exactly on real simulation output."""
        for factors in baseline_stats.per_type.values():
            assert factors.u_total == pytest.approx(
                predicted_u(factors), abs=1e-9
            )


class TestFig5Shapes:
    def test_m_nodes_dominated_by_providers(self, baseline_stats):
        """U(M) ≈ Ud(M) (Fig. 5 bottom)."""
        factors = baseline_stats.factors(NodeType.M)
        provider_share = factors.u(Relationship.PROVIDER) / factors.u_total
        assert provider_share > 0.6

    def test_qd_m_near_one(self, baseline_stats):
        """Providers almost always notify their customers (Fig. 7)."""
        assert baseline_stats.factors(NodeType.M).q(Relationship.PROVIDER) > 0.9


class TestNoWrateEFactors:
    def test_e_factors_near_two(self, baseline_stats):
        """NO-WRATE suppresses path exploration: e ≈ 2 (Sec. 4)."""
        for node_type in (NodeType.T, NodeType.M):
            factors = baseline_stats.factors(node_type)
            for rel in Relationship:
                e = factors.e(rel)
                if e > 0:
                    assert 1.9 <= e <= 2.6


class TestTreeCornerCase:
    def test_tree_gives_exactly_two_updates(self):
        """Sec. 5.2: in TREE, U(T) is pinned at 2 updates per C-event."""
        graph = generate_topology(scenario_params("TREE", 300), seed=5)
        stats = run_c_event_experiment(graph, FAST, num_origins=5, seed=5)
        assert stats.u(NodeType.T) == pytest.approx(2.0, abs=0.05)
        assert stats.down_updates_per_type[NodeType.T] == pytest.approx(1.0, abs=0.05)


class TestWrateClaims:
    def test_wrate_increases_churn_everywhere(self):
        """Sec. 6: WRATE raises churn for every node type."""
        graph = generate_topology(baseline_params(400), seed=13)
        no_wrate = run_c_event_experiment(
            graph, FAST.replace(wrate=False), num_origins=5, seed=13
        )
        wrate = run_c_event_experiment(
            graph, FAST.replace(wrate=True), num_origins=5, seed=13
        )
        for node_type in (NodeType.T, NodeType.M, NodeType.CP, NodeType.C):
            assert wrate.u(node_type) > no_wrate.u(node_type) * 0.95
        # the edge suffers relatively more (longer paths -> exploration)
        t_ratio = wrate.u(NodeType.T) / no_wrate.u(NodeType.T)
        c_ratio = wrate.u(NodeType.C) / no_wrate.u(NodeType.C)
        assert c_ratio > t_ratio * 0.9

    def test_wrate_slows_down_convergence(self):
        """Rate-limited withdrawals crawl hop by hop."""
        graph = generate_topology(baseline_params(300), seed=17)
        no_wrate = run_c_event_experiment(
            graph, FAST.replace(wrate=False), num_origins=3, seed=17
        )
        wrate = run_c_event_experiment(
            graph, FAST.replace(wrate=True), num_origins=3, seed=17
        )
        assert wrate.mean_down_convergence > 2 * no_wrate.mean_down_convergence


class TestPeeringIrrelevance:
    def test_peering_scenarios_close(self):
        """Sec. 5.3: peering density does not move U(M) much."""
        results = {}
        for scenario in ("BASELINE", "NO-PEERING", "STRONG-CORE-PEERING"):
            graph = generate_topology(scenario_params(scenario, 300), seed=19)
            stats = run_c_event_experiment(graph, FAST, num_origins=5, seed=19)
            results[scenario] = stats.u(NodeType.M)
        base = results["BASELINE"]
        for scenario, value in results.items():
            assert value == pytest.approx(base, rel=0.4), scenario
