"""Concurrent multi-prefix events: isolation and eventual correctness.

The simulator handles any number of prefixes in flight; these tests stress
overlapping C-events from different origins and assert per-prefix
correctness against the oracle — prefixes must not interfere.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.config import BGPConfig
from repro.core.reference import steady_state_routes
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.005)


def check_prefix(network, graph, origin, prefix):
    oracle = steady_state_routes(graph, origin)
    assert set(network.nodes_with_route(prefix)) == set(oracle)
    for node_id, expected in oracle.items():
        best = network.node(node_id).best_route(prefix)
        assert len(best.path) == expected.length


class TestConcurrentAnnouncements:
    def test_simultaneous_origins_converge_independently(self):
        graph = generate_topology(baseline_params(120), seed=3)
        origins = graph.nodes_of_type(NodeType.C)[:4]
        network = SimNetwork(graph, FAST, seed=3)
        for prefix, origin in enumerate(origins):
            network.originate(origin, prefix)  # all injected at t=0
        network.run_to_convergence()
        for prefix, origin in enumerate(origins):
            check_prefix(network, graph, origin, prefix)

    def test_interleaved_flaps_do_not_cross_talk(self):
        graph = generate_topology(baseline_params(120), seed=4)
        a, b = graph.nodes_of_type(NodeType.C)[:2]
        network = SimNetwork(graph, FAST, seed=4)
        network.originate(a, 0)
        network.originate(b, 1)
        network.run_to_convergence()
        # withdraw a while b flaps, staggered mid-convergence
        network.withdraw(a, 0)
        network.engine.run(until=network.engine.now + 0.5)
        network.withdraw(b, 1)
        network.engine.run(until=network.engine.now + 0.5)
        network.originate(b, 1)
        network.run_to_convergence()
        assert network.nodes_with_route(0) == []
        check_prefix(network, graph, b, 1)

    @given(
        seed=st.integers(min_value=0, max_value=10**4),
        stagger=st.floats(min_value=0.0, max_value=5.0),
    )
    @settings(max_examples=10, deadline=None)
    def test_staggered_events_end_consistent(self, seed, stagger):
        graph = generate_topology(baseline_params(100), seed=seed)
        origins = graph.nodes_of_type(NodeType.C)[:3]
        network = SimNetwork(graph, FAST, seed=seed)
        start = 0.0
        for prefix, origin in enumerate(origins):
            network.engine.schedule_at(
                start + prefix * stagger,
                lambda o=origin, p=prefix: network.node(o).originate(p),
            )
        network.run_to_convergence()
        for prefix, origin in enumerate(origins):
            check_prefix(network, graph, origin, prefix)


class TestPerInterfaceCoupling:
    def test_shared_timer_still_converges_correctly(self):
        """Per-interface MRAI couples prefixes on one session; correctness
        of the final state must be unaffected by the coupling."""
        graph = generate_topology(baseline_params(100), seed=7)
        origins = graph.nodes_of_type(NodeType.C)[:3]
        network = SimNetwork(graph, FAST, seed=7)
        for prefix, origin in enumerate(origins):
            network.originate(origin, prefix)
        network.run_to_convergence()
        # flap everything at once: maximal out-queue sharing
        for prefix, origin in enumerate(origins):
            network.withdraw(origin, prefix)
        for prefix, origin in enumerate(origins):
            network.originate(origin, prefix)
        network.run_to_convergence()
        for prefix, origin in enumerate(origins):
            check_prefix(network, graph, origin, prefix)
