"""Network-level route-flap-damping behaviour (extension).

Flaps are *scheduled* at short intervals (a real flap storm) rather than
converge-then-flap: running to full convergence between flaps would also
drain the damper's reuse timers, silently advancing the clock by whole
suppression periods and letting penalties decay between flaps.
"""

import pytest

from repro.bgp.config import BGPConfig, DampingConfig
from repro.sim.network import SimNetwork
from repro.topology.types import NodeType

FLAP_PERIOD = 20.0


def storm_network(diamond, *, enabled, flaps=5):
    """Flap C4's prefix every FLAP_PERIOD seconds; returns the network
    with the clock parked just after the last flap (reuse timers still
    pending)."""
    damping = DampingConfig(
        enabled=enabled,
        suppress_threshold=2.0,
        reuse_threshold=0.75,
        half_life=600.0,
    )
    config = BGPConfig(
        mrai=1.0, link_delay=0.001, processing_time_max=0.005, damping=damping
    )
    network = SimNetwork(diamond, config, seed=9)
    network.originate(4, 0)
    network.run_to_convergence()
    network.start_counting()
    start = network.engine.now
    for k in range(flaps):
        network.engine.schedule_at(
            start + k * FLAP_PERIOD, lambda: network.withdraw(4, 0)
        )
        network.engine.schedule_at(
            start + k * FLAP_PERIOD + FLAP_PERIOD / 2,
            lambda: network.originate(4, 0),
        )
    storm_end = start + flaps * FLAP_PERIOD
    network.engine.run(until=storm_end)
    return network


class TestDampingInNetwork:
    def test_suppression_reduces_updates(self, diamond):
        undamped = storm_network(diamond, enabled=False)
        damped = storm_network(diamond, enabled=True)
        assert damped.counter.total < undamped.counter.total

    def test_suppressed_route_excluded_from_decision(self, diamond):
        """During the storm the providers damp the flapping stub."""
        network = storm_network(diamond, enabled=True, flaps=5)
        now = network.engine.now
        # the origin itself always has its local route
        assert network.node(4).best_route(0) is not None
        suppressed = [
            p
            for p in (2, 3)
            if network.node(p)._damper.is_suppressed(4, 0, now)
        ]
        assert suppressed
        for p in suppressed:
            best = network.node(p).best_route(0)
            assert best is None or best.next_hop != 4

    def test_route_reusable_after_decay(self, diamond):
        network = storm_network(diamond, enabled=True, flaps=5)
        # drain everything: reuse timers fire, suppression lifts, and the
        # still-announced prefix is reinstated from the Adj-RIB-In
        network.run_to_convergence()
        network.engine.run(until=network.engine.now + 5000.0)
        network.withdraw(4, 0)
        network.run_to_convergence()
        network.originate(4, 0)
        network.run_to_convergence()
        best = network.node(2).best_route(0)
        assert best is not None
        assert best.next_hop == 4

    def test_reuse_timer_restores_route_without_new_updates(self, diamond):
        """The damper's reuse check alone must bring the route back."""
        network = storm_network(diamond, enabled=True, flaps=5)
        network.run_to_convergence()  # includes pending reuse checks
        for p in (2, 3):
            best = network.node(p).best_route(0)
            assert best is not None
