"""Tests for the Mann–Kendall trend test and Sen slope."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.stats.mannkendall import (
    mann_kendall,
    sen_slope,
    trend_total_growth,
)


class TestMannKendall:
    def test_strictly_increasing(self):
        result = mann_kendall([1.0, 2.0, 3.0, 4.0, 5.0, 6.0])
        assert result.trend == "increasing"
        assert result.s == 15  # all pairs concordant
        assert result.tau == pytest.approx(1.0)
        assert result.p_value < 0.05
        assert result.significant

    def test_strictly_decreasing(self):
        result = mann_kendall([6.0, 5.0, 4.0, 3.0, 2.0, 1.0])
        assert result.trend == "decreasing"
        assert result.tau == pytest.approx(-1.0)

    def test_no_trend_in_noise(self):
        """The false-positive rate on iid noise must be near alpha."""
        rng = random.Random(3)
        rejections = 0
        trials = 60
        for _ in range(trials):
            series = [rng.random() for _ in range(40)]
            if mann_kendall(series).trend != "no trend":
                rejections += 1
        assert rejections / trials < 0.15

    def test_trend_recovered_under_heavy_noise(self):
        """The paper's use case: trend despite huge variability."""
        rng = random.Random(5)
        series = [
            (1.0 + 0.02 * i) * rng.lognormvariate(0, 0.4) for i in range(200)
        ]
        result = mann_kendall(series)
        assert result.trend == "increasing"

    def test_tie_correction(self):
        result = mann_kendall([1.0, 1.0, 1.0, 2.0, 2.0, 3.0])
        assert result.trend == "increasing" or result.p_value >= 0.05
        # variance must be reduced relative to the tie-free formula
        n = 6
        untied_var = n * (n - 1) * (2 * n + 5) / 18.0
        assert result.variance < untied_var

    def test_minimum_length(self):
        with pytest.raises(ParameterError):
            mann_kendall([1.0, 2.0])

    def test_invalid_alpha(self):
        with pytest.raises(ParameterError):
            mann_kendall([1.0, 2.0, 3.0], alpha=1.5)

    def test_constant_series(self):
        result = mann_kendall([5.0] * 10)
        assert result.s == 0
        assert result.trend == "no trend"

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6), min_size=3, max_size=40
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_s_antisymmetric_under_reversal(self, values):
        forward = mann_kendall(values)
        backward = mann_kendall(values[::-1])
        assert forward.s == -backward.s


class TestSenSlope:
    def test_exact_linear(self):
        assert sen_slope([1.0, 3.0, 5.0, 7.0]) == pytest.approx(2.0)

    def test_robust_to_outlier(self):
        clean = [float(i) for i in range(20)]
        dirty = list(clean)
        dirty[10] = 1e6
        assert sen_slope(dirty) == pytest.approx(1.0, rel=0.2)

    def test_minimum_length(self):
        with pytest.raises(ParameterError):
            sen_slope([1.0])

    def test_negative_slope(self):
        assert sen_slope([9.0, 6.0, 3.0, 0.0]) == pytest.approx(-3.0)


class TestTotalGrowth:
    def test_doubling_series(self):
        series = [100.0 + 100.0 * i / 9 for i in range(10)]
        # start 100, end 200 -> +100%
        assert trend_total_growth(series) == pytest.approx(1.0, rel=0.05)

    def test_flat_series(self):
        assert trend_total_growth([50.0] * 10) == pytest.approx(0.0, abs=1e-9)

    def test_robust_to_bursts(self):
        rng = random.Random(1)
        series = [100.0 * (1.0 + 2.0 * i / 299) for i in range(300)]
        for i in range(0, 300, 50):
            series[i] *= 50  # burst days
        growth = trend_total_growth(series)
        assert growth == pytest.approx(2.0, rel=0.25)
