"""Tests for confidence intervals."""

import random

import pytest

from repro.errors import ParameterError
from repro.stats.confidence import (
    bootstrap_confidence_interval,
    mean_confidence_interval,
)


class TestTInterval:
    def test_contains_mean(self):
        ci = mean_confidence_interval([1.0, 2.0, 3.0, 4.0, 5.0])
        assert ci.mean == pytest.approx(3.0)
        assert ci.low < 3.0 < ci.high
        assert ci.contains(3.0)
        assert not ci.contains(100.0)

    def test_narrows_with_samples(self):
        rng = random.Random(0)
        small = [rng.gauss(10, 2) for _ in range(10)]
        large = [rng.gauss(10, 2) for _ in range(1000)]
        assert (
            mean_confidence_interval(large).half_width
            < mean_confidence_interval(small).half_width
        )

    def test_widens_with_confidence(self):
        rng = random.Random(1)
        data = [rng.gauss(0, 1) for _ in range(50)]
        assert (
            mean_confidence_interval(data, confidence=0.99).half_width
            > mean_confidence_interval(data, confidence=0.90).half_width
        )

    def test_coverage_calibration(self):
        """~95% of intervals should contain the true mean."""
        rng = random.Random(7)
        hits = 0
        trials = 300
        for _ in range(trials):
            sample = [rng.gauss(5.0, 1.0) for _ in range(20)]
            if mean_confidence_interval(sample).contains(5.0):
                hits += 1
        assert 0.90 <= hits / trials <= 0.99

    def test_relative_half_width(self):
        ci = mean_confidence_interval([10.0, 10.0, 10.0, 10.1])
        assert ci.relative_half_width < 0.05

    def test_needs_two_values(self):
        with pytest.raises(ParameterError):
            mean_confidence_interval([1.0])

    def test_invalid_confidence(self):
        with pytest.raises(ParameterError):
            mean_confidence_interval([1.0, 2.0], confidence=0.0)


class TestBootstrap:
    def test_reasonable_interval(self):
        rng = random.Random(2)
        data = [rng.gauss(7.0, 1.0) for _ in range(100)]
        sample_mean = sum(data) / len(data)
        ci = bootstrap_confidence_interval(data, seed=1)
        assert ci.low < sample_mean < ci.high
        assert ci.high - ci.low < 1.0

    def test_deterministic_for_seed(self):
        data = [1.0, 5.0, 2.0, 8.0, 3.0]
        a = bootstrap_confidence_interval(data, seed=3)
        b = bootstrap_confidence_interval(data, seed=3)
        assert (a.low, a.high) == (b.low, b.high)

    def test_needs_two_values(self):
        with pytest.raises(ParameterError):
            bootstrap_confidence_interval([1.0])
