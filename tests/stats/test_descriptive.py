"""Tests for descriptive statistics."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.stats.descriptive import (
    coefficient_of_variation,
    geometric_mean,
    percentile,
    summarize,
)


class TestPercentile:
    def test_extremes(self):
        data = [1.0, 2.0, 3.0, 4.0]
        assert percentile(data, 0.0) == 1.0
        assert percentile(data, 1.0) == 4.0

    def test_median_interpolation(self):
        assert percentile([1.0, 2.0, 3.0, 4.0], 0.5) == pytest.approx(2.5)
        assert percentile([1.0, 2.0, 3.0], 0.5) == 2.0

    def test_single_value(self):
        assert percentile([7.0], 0.9) == 7.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            percentile([], 0.5)

    def test_fraction_out_of_range(self):
        with pytest.raises(ParameterError):
            percentile([1.0], 1.5)

    @given(
        data=st.lists(st.floats(min_value=-100, max_value=100), min_size=1, max_size=50),
        fraction=st.floats(min_value=0.0, max_value=1.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_result_within_range(self, data, fraction):
        value = percentile(sorted(data), fraction)
        assert min(data) <= value <= max(data)


class TestSummarize:
    def test_known_sample(self):
        summary = summarize([4.0, 1.0, 3.0, 2.0])
        assert summary.count == 4
        assert summary.mean == pytest.approx(2.5)
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.median == pytest.approx(2.5)

    def test_single_value(self):
        summary = summarize([5.0])
        assert summary.std == 0.0
        assert summary.p95 == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ParameterError):
            summarize([])

    @given(data=st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=2, max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_ordering_invariants(self, data):
        s = summarize(data)
        assert s.minimum <= s.p25 <= s.median <= s.p75 <= s.p95 <= s.maximum
        # sum()/n can exceed max() by one ulp on identical values
        slack = 1e-9 * max(1.0, abs(s.maximum))
        assert s.minimum - slack <= s.mean <= s.maximum + slack


class TestDerived:
    def test_coefficient_of_variation(self):
        assert coefficient_of_variation([10.0, 10.0, 10.0]) == 0.0
        assert coefficient_of_variation([5.0, 15.0]) > 0.5

    def test_cv_zero_mean_rejected(self):
        with pytest.raises(ParameterError):
            coefficient_of_variation([-1.0, 1.0])

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 100.0]) == pytest.approx(10.0)
        assert geometric_mean([2.0, 2.0, 2.0]) == pytest.approx(2.0)

    def test_geometric_mean_requires_positive(self):
        with pytest.raises(ParameterError):
            geometric_mean([1.0, 0.0])
        with pytest.raises(ParameterError):
            geometric_mean([])
