"""Tests for discrete power-law fitting."""

import random

import pytest

from repro.errors import ParameterError
from repro.stats.powerlaw import best_minimum, fit_power_law
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params


def sample_power_law(alpha, d_min, size, seed):
    """Inverse-CDF-ish sampler for a discrete power law (rejection)."""
    rng = random.Random(seed)
    out = []
    while len(out) < size:
        # continuous approximation, rounded (good enough for testing)
        u = rng.random()
        # continuous draw from x >= d_min - 0.5, rounded to the nearest
        # integer: the discretization the -0.5 MLE correction assumes
        x = (d_min - 0.5) * (1.0 - u) ** (-1.0 / (alpha - 1.0))
        out.append(int(x + 0.5))
    return out


class TestFit:
    def test_recovers_known_exponent(self):
        sample = sample_power_law(2.5, 2, 5000, seed=1)
        fit = fit_power_law(sample, d_min=2)
        assert fit.alpha == pytest.approx(2.5, abs=0.25)
        assert fit.plausible

    def test_rejects_tiny_tail(self):
        with pytest.raises(ParameterError):
            fit_power_law([5, 6, 7], d_min=2)

    def test_rejects_degenerate_tail(self):
        with pytest.raises(ParameterError):
            fit_power_law([3] * 50, d_min=2)

    def test_rejects_bad_dmin(self):
        with pytest.raises(ParameterError):
            fit_power_law([1, 2, 3], d_min=0)

    def test_exponential_sample_fits_poorly(self):
        """A light-tailed sample must produce a worse KS distance than a
        genuine power-law sample."""
        rng = random.Random(2)
        light = [max(2, round(rng.expovariate(0.2))) for _ in range(3000)]
        heavy = sample_power_law(2.3, 2, 3000, seed=2)
        light_fit = fit_power_law(light, d_min=2)
        heavy_fit = fit_power_law(heavy, d_min=2)
        assert heavy_fit.ks_distance < light_fit.ks_distance

    def test_generated_topology_degrees_plausible(self):
        graph = generate_topology(baseline_params(1200), seed=4)
        degrees = [graph.degree(v) for v in graph.node_ids]
        fit = best_minimum(degrees)
        assert 1.3 < fit.alpha < 3.5
        assert fit.plausible, fit


class TestBestMinimum:
    def test_picks_lowest_ks(self):
        sample = sample_power_law(2.5, 3, 4000, seed=5)
        fit = best_minimum(sample, candidates=(1, 2, 3, 4))
        others = [
            fit_power_law(sample, d_min=c).ks_distance
            for c in (1, 2, 3, 4)
        ]
        assert fit.ks_distance == pytest.approx(min(others))

    def test_all_candidates_fail(self):
        with pytest.raises(ParameterError):
            best_minimum([1, 1, 1], candidates=(2, 3))
