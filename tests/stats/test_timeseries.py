"""Tests for the synthetic churn series (the Fig. 1 substitute)."""

import pytest

from repro.errors import ParameterError
from repro.stats.mannkendall import mann_kendall, trend_total_growth
from repro.stats.timeseries import (
    ChurnSeriesSpec,
    daily_to_cumulative,
    synthesize_churn_series,
)


class TestSynthesis:
    def test_length_and_positivity(self):
        series = synthesize_churn_series(ChurnSeriesSpec(days=365), seed=0)
        assert len(series) == 365
        assert all(v > 0 for v in series)

    def test_deterministic_for_seed(self):
        spec = ChurnSeriesSpec(days=100)
        assert synthesize_churn_series(spec, seed=5) == synthesize_churn_series(
            spec, seed=5
        )
        assert synthesize_churn_series(spec, seed=5) != synthesize_churn_series(
            spec, seed=6
        )

    def test_default_spec_used_when_none(self):
        series = synthesize_churn_series(seed=1)
        assert len(series) == 1095

    def test_trend_calibration(self):
        """The Mann-Kendall pipeline must recover the configured growth."""
        spec = ChurnSeriesSpec(days=1095, total_growth=2.0)
        series = synthesize_churn_series(spec, seed=3)
        assert mann_kendall(series).trend == "increasing"
        assert trend_total_growth(series) == pytest.approx(2.0, rel=0.35)

    def test_zero_growth_yields_no_trend(self):
        spec = ChurnSeriesSpec(days=400, total_growth=0.0)
        series = synthesize_churn_series(spec, seed=3)
        growth = trend_total_growth(series)
        assert abs(growth) < 0.4

    def test_bursts_present(self):
        spec = ChurnSeriesSpec(days=1095, burst_probability=0.02)
        series = synthesize_churn_series(spec, seed=2)
        mean = sum(series) / len(series)
        assert max(series) > 5 * mean

    def test_no_bursts_when_disabled(self):
        spec = ChurnSeriesSpec(days=400, burst_probability=0.0, noise_sigma=0.0,
                               weekly_amplitude=0.0, total_growth=0.0)
        series = synthesize_churn_series(spec, seed=2)
        assert max(series) == pytest.approx(min(series))


class TestSpecValidation:
    def test_too_few_days(self):
        with pytest.raises(ParameterError):
            ChurnSeriesSpec(days=1)

    def test_negative_base_level(self):
        with pytest.raises(ParameterError):
            ChurnSeriesSpec(base_level=-5.0)

    def test_burst_probability_range(self):
        with pytest.raises(ParameterError):
            ChurnSeriesSpec(burst_probability=1.5)

    def test_burst_scale_minimum(self):
        with pytest.raises(ParameterError):
            ChurnSeriesSpec(burst_scale=0.5)

    def test_impossible_growth(self):
        with pytest.raises(ParameterError):
            ChurnSeriesSpec(total_growth=-2.0)


class TestCumulative:
    def test_cumulative_monotone(self):
        series = [1.0, 2.0, 3.0]
        assert daily_to_cumulative(series) == [1.0, 3.0, 6.0]


class TestNoiseSourceSeam:
    """The pluggable noise source must not perturb the default path."""

    def test_default_path_golden(self):
        # Regression pin: these exact values predate the noise_source
        # seam; any drift means the default path is no longer identical.
        series = synthesize_churn_series(ChurnSeriesSpec(days=30), seed=7)
        assert series[0] == pytest.approx(132431.74846214475, abs=1e-6)
        assert series[-1] == pytest.approx(361993.53576978354, abs=1e-6)
        assert sum(series) == pytest.approx(8123811.134668559, rel=1e-12)

    def test_none_noise_source_is_default(self):
        spec = ChurnSeriesSpec(days=60)
        assert synthesize_churn_series(spec, seed=3) == synthesize_churn_series(
            spec, seed=3, noise_source=None
        )

    def test_custom_source_receives_day_and_rng(self):
        calls = []

        def source(day, rng):
            calls.append(day)
            return 1.0

        spec = ChurnSeriesSpec(days=45)
        series = synthesize_churn_series(spec, seed=3, noise_source=source)
        assert calls == list(range(45))
        assert len(series) == 45

    def test_unit_noise_removes_day_scatter(self):
        spec = ChurnSeriesSpec(days=45, burst_probability=0.0)
        noisy = synthesize_churn_series(spec, seed=3)
        flat = synthesize_churn_series(
            spec, seed=3, noise_source=lambda day, rng: 1.0
        )
        assert flat != noisy
        # With unit multipliers the series is the deterministic envelope.
        assert flat == synthesize_churn_series(
            spec, seed=99, noise_source=lambda day, rng: 1.0
        )
