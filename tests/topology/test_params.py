"""Tests for TopologyParams and the Table-1 Baseline parameterization."""

import pytest

from repro.errors import ParameterError
from repro.topology.params import TopologyParams, baseline_counts, baseline_params


class TestBaselineParams:
    def test_counts_sum_to_n(self):
        for n in (100, 1000, 4321, 10000):
            params = baseline_params(n)
            assert params.n_t + params.n_m + params.n_cp + params.n_c == n

    def test_table1_fractions(self):
        params = baseline_params(10000)
        assert params.n_m == 1500  # 0.15 n
        assert params.n_cp == 500  # 0.05 n
        assert params.n_t == 5

    def test_table1_degree_formulas_at_10000(self):
        """At n=10000 the Table-1 formulas give their maximal values."""
        params = baseline_params(10000)
        assert params.d_m == pytest.approx(4.5)
        assert params.d_cp == pytest.approx(3.5)
        assert params.d_c == pytest.approx(1.5)
        assert params.p_m == pytest.approx(3.0)
        assert params.p_cp_m == pytest.approx(2.2)
        assert params.p_cp_cp == pytest.approx(0.55)

    def test_table1_degree_formulas_at_1000(self):
        params = baseline_params(1000)
        assert params.d_m == pytest.approx(2.25)
        assert params.d_cp == pytest.approx(2.15)
        assert params.d_c == pytest.approx(1.05)

    def test_t_probabilities(self):
        params = baseline_params(2000)
        assert params.t_m == params.t_cp == 0.375
        assert params.t_c == 0.125

    def test_custom_n_t(self):
        params = baseline_params(1000, n_t=6)
        assert params.n_t == 6
        assert params.n_t + params.n_m + params.n_cp + params.n_c == 1000

    def test_scenario_label(self):
        assert baseline_params(500).scenario == "BASELINE"


class TestValidation:
    def test_rejects_negative_n(self):
        with pytest.raises(ParameterError):
            baseline_params(0)

    def test_rejects_count_mismatch(self):
        with pytest.raises(ParameterError, match="sum"):
            TopologyParams(
                n=100, n_t=5, n_m=10, n_cp=5, n_c=70,  # sums to 90
                d_m=2, d_cp=2, d_c=1, p_m=1, p_cp_m=0.2, p_cp_cp=0.05,
                t_m=0.375, t_cp=0.375, t_c=0.125,
            )

    def test_rejects_no_t_nodes(self):
        with pytest.raises(ParameterError):
            TopologyParams(
                n=100, n_t=0, n_m=15, n_cp=5, n_c=80,
                d_m=2, d_cp=2, d_c=1, p_m=1, p_cp_m=0.2, p_cp_cp=0.05,
                t_m=0.375, t_cp=0.375, t_c=0.125,
            )

    def test_rejects_probability_out_of_range(self):
        with pytest.raises(ParameterError, match="t_m"):
            baseline_params(100).replace(t_m=1.5)

    def test_rejects_negative_degree(self):
        with pytest.raises(ParameterError, match="d_m"):
            baseline_params(100).replace(d_m=-1.0)

    def test_rejects_zero_regions(self):
        with pytest.raises(ParameterError, match="regions"):
            baseline_params(100).replace(regions=0)

    def test_baseline_counts_too_small(self):
        with pytest.raises(ParameterError):
            baseline_counts(4, n_t=5)


class TestReplace:
    def test_replace_validates(self):
        params = baseline_params(1000)
        with pytest.raises(ParameterError):
            params.replace(n_c=0)  # breaks the sum invariant

    def test_replace_preserves_other_fields(self):
        params = baseline_params(1000)
        changed = params.replace(d_m=9.0)
        assert changed.d_m == 9.0
        assert changed.d_cp == params.d_cp
        assert changed.n == params.n

    def test_as_dict_round_trip(self):
        params = baseline_params(800)
        data = params.as_dict()
        assert data["n"] == 800
        assert data["scenario"] == "BASELINE"
        rebuilt = TopologyParams(**data)
        assert rebuilt == params
