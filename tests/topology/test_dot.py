"""Tests for Graphviz DOT export."""

import pytest

from repro.topology.dot import save_dot, to_dot
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params


class TestToDot:
    def test_contains_all_nodes_and_edges(self, diamond):
        dot = to_dot(diamond)
        for node_id in diamond.node_ids:
            assert f"n{node_id} [" in dot
        # transit drawn provider -> customer
        assert "n0 -> n2;" in dot
        # peering dashed, undirected
        assert "n0 -> n1 [dir=none, style=dashed" in dot

    def test_tiers_grouped(self, diamond):
        dot = to_dot(diamond)
        assert "subgraph tier_T" in dot
        assert "subgraph tier_M" in dot
        assert "subgraph tier_C" in dot
        assert "subgraph tier_CP" not in dot  # diamond has no CP nodes

    def test_labels_optional(self, diamond):
        assert 'label="T0"' in to_dot(diamond, include_labels=True)
        assert 'label="T0"' not in to_dot(diamond, include_labels=False)

    def test_max_nodes_guard(self):
        graph = generate_topology(baseline_params(120), seed=1)
        with pytest.raises(ValueError, match="max_nodes"):
            to_dot(graph, max_nodes=50)
        assert to_dot(graph, max_nodes=None).startswith("digraph")

    def test_scenario_in_header(self, diamond):
        assert 'digraph "diamond"' in to_dot(diamond)

    def test_valid_brace_balance(self, diamond):
        dot = to_dot(diamond)
        assert dot.count("{") == dot.count("}")


class TestSaveDot:
    def test_writes_file(self, diamond, tmp_path):
        path = tmp_path / "topo.dot"
        save_dot(diamond, path)
        assert path.read_text(encoding="utf-8").startswith("digraph")
