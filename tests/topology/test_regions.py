"""Tests for region assignment."""

import random

import pytest

from repro.errors import ParameterError
from repro.topology.regions import all_regions, draw_regions
from repro.topology.types import NodeType


class TestAllRegions:
    def test_full_set(self):
        assert all_regions(3) == frozenset({0, 1, 2})

    def test_invalid_count(self):
        with pytest.raises(ParameterError):
            all_regions(0)


class TestDrawRegions:
    def test_t_nodes_span_all_regions(self):
        rng = random.Random(1)
        assert draw_regions(NodeType.T, 5, rng) == frozenset(range(5))

    def test_c_nodes_single_region(self):
        rng = random.Random(1)
        for _ in range(50):
            regions = draw_regions(NodeType.C, 5, rng)
            assert len(regions) == 1
            assert all(0 <= r < 5 for r in regions)

    def test_single_region_world(self):
        rng = random.Random(1)
        for node_type in NodeType:
            assert draw_regions(node_type, 1, rng) == frozenset({0})

    def test_m_two_region_fraction(self):
        """~20% of M nodes should span two regions."""
        rng = random.Random(7)
        two = sum(
            1 for _ in range(4000) if len(draw_regions(NodeType.M, 5, rng)) == 2
        )
        assert 0.16 < two / 4000 < 0.24

    def test_cp_two_region_fraction(self):
        rng = random.Random(7)
        two = sum(
            1 for _ in range(4000) if len(draw_regions(NodeType.CP, 5, rng)) == 2
        )
        assert 0.03 < two / 4000 < 0.08

    def test_two_regions_are_distinct(self):
        rng = random.Random(3)
        for _ in range(200):
            regions = draw_regions(
                NodeType.M, 3, rng, m_two_region_fraction=1.0
            )
            assert len(regions) == 2

    def test_regions_cover_uniformly(self):
        rng = random.Random(11)
        counts = [0] * 5
        for _ in range(5000):
            (region,) = draw_regions(NodeType.C, 5, rng)
            counts[region] += 1
        for count in counts:
            assert 800 < count < 1200

    def test_invalid_region_count(self):
        with pytest.raises(ParameterError):
            draw_regions(NodeType.C, 0, random.Random(0))
