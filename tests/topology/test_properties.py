"""Property-based tests (hypothesis) for the topology substrate."""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology.attachment import draw_link_count, preferential_choice
from repro.topology.generator import generate_topology
from repro.topology.graph import ASGraph
from repro.topology.params import baseline_params
from repro.topology.scenarios import scenario_names, scenario_params
from repro.topology.types import NodeType, Relationship
from repro.topology.validation import find_violations


@st.composite
def small_params(draw):
    """Random but valid generator parameters for small topologies."""
    n = draw(st.integers(min_value=40, max_value=160))
    base = baseline_params(n, n_t=draw(st.integers(min_value=2, max_value=6)))
    return base.replace(
        d_m=draw(st.floats(min_value=1.0, max_value=4.0)),
        d_cp=draw(st.floats(min_value=1.0, max_value=3.0)),
        d_c=draw(st.floats(min_value=1.0, max_value=2.0)),
        p_m=draw(st.floats(min_value=0.0, max_value=3.0)),
        p_cp_m=draw(st.floats(min_value=0.0, max_value=1.0)),
        p_cp_cp=draw(st.floats(min_value=0.0, max_value=0.5)),
        t_m=draw(st.floats(min_value=0.0, max_value=1.0)),
        t_cp=draw(st.floats(min_value=0.0, max_value=1.0)),
        t_c=draw(st.floats(min_value=0.0, max_value=1.0)),
        regions=draw(st.integers(min_value=1, max_value=4)),
    )


class TestGeneratorProperties:
    @given(params=small_params(), seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=40, deadline=None)
    def test_generated_topologies_always_valid(self, params, seed):
        """Any parameter combination yields a structurally valid topology."""
        graph = generate_topology(params, seed=seed)
        assert len(graph) == params.n
        assert find_violations(graph) == []

    @given(params=small_params(), seed=st.integers(min_value=0, max_value=2**32))
    @settings(max_examples=20, deadline=None)
    def test_relationships_are_mutually_consistent(self, params, seed):
        graph = generate_topology(params, seed=seed)
        for u in graph.node_ids:
            for v, rel in graph.neighbors(u).items():
                assert graph.relationship(v, u) is rel.inverse

    @given(
        scenario=st.sampled_from(sorted(scenario_names())),
        n=st.integers(min_value=60, max_value=150),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=30, deadline=None)
    def test_every_scenario_generates_valid_graphs(self, scenario, n, seed):
        graph = generate_topology(scenario_params(scenario, n), seed=seed)
        assert find_violations(graph) == []

    @given(params=small_params(), seed=st.integers(min_value=0, max_value=100))
    @settings(max_examples=20, deadline=None)
    def test_customer_tree_never_contains_ancestors(self, params, seed):
        graph = generate_topology(params, seed=seed)
        for node in graph.node_ids:
            tree = graph.customer_tree(node)
            assert node not in tree
            for provider in graph.providers_of(node):
                assert provider not in tree or graph.is_in_customer_tree(
                    ancestor=node, descendant=provider
                ) is False


class TestAttachmentProperties:
    @given(
        average=st.floats(min_value=0.0, max_value=10.0),
        minimum=st.integers(min_value=0, max_value=1),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_draw_link_count_bounds(self, average, minimum, seed):
        rng = random.Random(seed)
        value = draw_link_count(average, rng, minimum=minimum)
        assert value >= (minimum if average > 0 or minimum > 0 else 0)
        # never more than twice the average (+1 for probabilistic rounding)
        assert value <= max(minimum, 2 * average) + 1

    @given(
        weights=st.lists(st.integers(min_value=0, max_value=50), min_size=1, max_size=20),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    @settings(max_examples=100, deadline=None)
    def test_preferential_choice_returns_candidate(self, weights, seed):
        candidates = list(range(len(weights)))
        rng = random.Random(seed)
        choice = preferential_choice(candidates, lambda c: weights[c], rng)
        assert choice in candidates


class TestGraphProperties:
    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_edges_match_adjacency(self, seed):
        graph = generate_topology(baseline_params(100), seed=seed)
        edge_list = list(graph.edges())
        assert len(edge_list) == graph.edge_count()
        for u, v, rel in edge_list:
            assert graph.relationship(u, v) is rel

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_cone_sizes_consistent_with_membership(self, seed):
        graph = generate_topology(baseline_params(90), seed=seed)
        sizes = graph.all_customer_tree_sizes()
        for node in graph.node_ids:
            assert sizes[node] == len(graph.customer_tree(node))
