"""Tests for structural topology comparison."""

import pytest

from repro.topology.compare import compare_topologies
from repro.topology.evolve import evolve_topology
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.scenarios import scenario_params
from repro.topology.types import NodeType


class TestCompare:
    def test_identical_instances_similar(self):
        a = generate_topology(baseline_params(300), seed=1)
        b = generate_topology(baseline_params(300), seed=1)
        comparison = compare_topologies(a, b)
        assert comparison.mix_divergence == 0.0
        assert comparison.degree_ks_statistic == 0.0
        assert comparison.depth_difference == 0
        assert comparison.similar()

    def test_two_seeds_same_params_similar(self):
        a = generate_topology(baseline_params(400), seed=1)
        b = generate_topology(baseline_params(400), seed=2)
        comparison = compare_topologies(a, b)
        assert comparison.similar(), comparison

    def test_dense_core_differs_in_mhd(self):
        a = generate_topology(baseline_params(400), seed=3)
        b = generate_topology(scenario_params("DENSE-CORE", 400), seed=3)
        comparison = compare_topologies(a, b)
        assert comparison.mhd_gap[NodeType.M] > 1.0
        assert not comparison.similar()

    def test_no_middle_differs_in_mix_and_depth(self):
        a = generate_topology(baseline_params(400), seed=4)
        b = generate_topology(scenario_params("NO-MIDDLE", 400), seed=4)
        comparison = compare_topologies(a, b)
        assert comparison.mix_divergence > 0.1
        assert comparison.depth_difference < 0
        assert not comparison.similar()

    def test_evolved_similar_to_regenerated(self):
        """Evolution must land in the same structural neighbourhood as
        regeneration at the target size."""
        evolved = generate_topology(baseline_params(300), seed=5)
        n_t = evolved.type_counts()[NodeType.T]
        evolve_topology(evolved, baseline_params(600, n_t=n_t), seed=6)
        regenerated = generate_topology(baseline_params(600, n_t=n_t), seed=7)
        comparison = compare_topologies(evolved, regenerated)
        assert comparison.mix_divergence < 0.02
        assert comparison.mhd_gap[NodeType.C] < 0.3
        assert abs(comparison.depth_difference) <= 1

    def test_prefer_middle_deepens_chains(self):
        a = generate_topology(baseline_params(400), seed=8)
        b = generate_topology(scenario_params("PREFER-MIDDLE", 400), seed=8)
        comparison = compare_topologies(a, b)
        assert comparison.chain_length_difference > 0
