"""The K-way partitioner: coverage, balance, determinism, cut quality."""

import pytest

from repro.errors import TopologyError
from repro.topology.generator import generate_topology
from repro.topology.partition import (
    GraphPartition,
    cut_statistics,
    partition_graph,
)
from repro.topology.scenarios import scenario_params
from repro.topology.types import Relationship


def _graph(n=120, scenario="BASELINE", seed=7):
    return generate_topology(scenario_params(scenario, n), seed=seed)


class TestPartitionGraph:
    def test_covers_every_node_exactly_once(self):
        graph = _graph()
        partition = partition_graph(graph, 3)
        assert sorted(partition.assignment) == graph.node_ids
        assert set(partition.assignment.values()) == {0, 1, 2}

    def test_parts_are_reasonably_balanced(self):
        graph = _graph(n=200)
        partition = partition_graph(graph, 4)
        sizes = partition.sizes()
        assert sum(sizes) == len(graph)
        assert min(sizes) > 0
        # The refine phase is bounded by the documented tolerance.
        assert max(sizes) <= 1.25 * (len(graph) / 4) + 1

    def test_deterministic(self):
        first = partition_graph(_graph(), 3).assignment
        second = partition_graph(_graph(), 3).assignment
        assert first == second

    def test_single_part_is_trivial(self):
        graph = _graph(n=40)
        partition = partition_graph(graph, 1)
        assert set(partition.assignment.values()) == {0}
        assert partition.cut_edges(graph) == []

    def test_cut_is_far_below_random(self):
        # A random assignment cuts ~half the edges for k=2; the
        # customer-tree heuristic must do much better.
        graph = _graph(n=200)
        partition = partition_graph(graph, 2)
        stats = cut_statistics(graph, partition)
        assert stats["cut_fraction"] < 0.35

    def test_cut_edges_match_assignment(self):
        graph = _graph(n=80)
        partition = partition_graph(graph, 2)
        for u, v, rel in partition.cut_edges(graph):
            assert partition.part_of(u) != partition.part_of(v)
            assert rel in (
                Relationship.PROVIDER,
                Relationship.PEER,
            )

    @pytest.mark.parametrize("bad", [0, -1])
    def test_rejects_non_positive_k(self, bad):
        with pytest.raises(TopologyError):
            partition_graph(_graph(n=30), bad)

    def test_rejects_more_parts_than_nodes(self):
        with pytest.raises(TopologyError):
            partition_graph(_graph(n=30), 31)

    def test_members_and_part_of_agree(self):
        graph = _graph(n=60)
        partition = partition_graph(graph, 3)
        for part in range(3):
            for node_id in partition.members(part):
                assert partition.part_of(node_id) == part
        with pytest.raises(TopologyError):
            partition.members(3)
        with pytest.raises(TopologyError):
            partition.part_of(10**9)


class TestCutStatistics:
    def test_shape_and_consistency(self):
        graph = _graph(n=100)
        partition = partition_graph(graph, 2)
        stats = cut_statistics(graph, partition)
        assert stats["num_parts"] == 2
        assert stats["cut_edges"] == stats["cut_transit"] + stats["cut_peer"]
        assert stats["total_edges"] == graph.edge_count()
        assert 0.0 <= stats["cut_fraction"] <= 1.0

    def test_explicit_partition(self):
        graph = _graph(n=50)
        odd_even = GraphPartition(
            num_parts=2,
            assignment={n: n % 2 for n in graph.node_ids},
        )
        stats = cut_statistics(graph, odd_even)
        assert stats["cut_edges"] == len(odd_even.cut_edges(graph))
