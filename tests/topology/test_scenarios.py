"""Tests for the scenario registry and parameter transforms."""

import pytest

from repro.errors import ParameterError
from repro.topology.params import baseline_params
from repro.topology.scenarios import (
    STATIC_MIDDLE_REFERENCE_N,
    register_scenario,
    scenario_names,
    scenario_params,
)

ALL_SCENARIOS = [
    "BASELINE",
    "NO-MIDDLE",
    "RICH-MIDDLE",
    "STATIC-MIDDLE",
    "TRANSIT-CLIQUE",
    "DENSE-CORE",
    "DENSE-EDGE",
    "TREE",
    "CONSTANT-MHD",
    "NO-PEERING",
    "STRONG-CORE-PEERING",
    "STRONG-EDGE-PEERING",
    "PREFER-MIDDLE",
    "PREFER-TOP",
]


class TestRegistry:
    def test_all_paper_scenarios_registered(self):
        assert set(ALL_SCENARIOS) <= set(scenario_names())

    def test_case_insensitive(self):
        assert scenario_params("baseline", 500) == scenario_params("BASELINE", 500)

    def test_unknown_scenario(self):
        with pytest.raises(ParameterError, match="unknown scenario"):
            scenario_params("MYSTERY", 500)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ParameterError, match="already registered"):
            register_scenario("BASELINE")(lambda n: baseline_params(n))

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_counts_always_sum_to_n(self, name):
        params = scenario_params(name, 1234)
        assert params.n_t + params.n_m + params.n_cp + params.n_c == 1234

    @pytest.mark.parametrize("name", ALL_SCENARIOS)
    def test_scenario_label_set(self, name):
        assert scenario_params(name, 500).scenario == name


class TestPopulationMix:
    def test_no_middle(self):
        params = scenario_params("NO-MIDDLE", 1000)
        assert params.n_m == 0
        # CP:C ratio preserved (0.05 : 0.80)
        assert params.n_cp / params.n_c == pytest.approx(0.0625, rel=0.15)

    def test_rich_middle_triples_m(self):
        base = baseline_params(1000)
        rich = scenario_params("RICH-MIDDLE", 1000)
        assert rich.n_m == pytest.approx(3 * base.n_m, rel=0.01)

    def test_static_middle_freezes_transit(self):
        params = scenario_params("STATIC-MIDDLE", 5000)
        reference = baseline_params(STATIC_MIDDLE_REFERENCE_N)
        assert params.n_m == reference.n_m
        assert params.n_t == reference.n_t
        assert params.n_cp + params.n_c == 5000 - params.n_t - params.n_m

    def test_static_middle_custom_reference(self):
        params = scenario_params("STATIC-MIDDLE", 5000, reference_n=400)
        reference = baseline_params(400)
        assert params.n_m == reference.n_m

    def test_static_middle_below_reference_is_baseline(self):
        params = scenario_params("STATIC-MIDDLE", 400)
        base = baseline_params(400)
        assert params.n_m == base.n_m

    def test_transit_clique(self):
        params = scenario_params("TRANSIT-CLIQUE", 2000)
        assert params.n_t == 300  # 0.15 n
        assert params.n_m == 0


class TestMultihoming:
    def test_dense_core(self):
        base = baseline_params(2000)
        params = scenario_params("DENSE-CORE", 2000)
        assert params.d_m == pytest.approx(3 * base.d_m)
        assert params.d_c == base.d_c

    def test_dense_edge(self):
        base = baseline_params(2000)
        params = scenario_params("DENSE-EDGE", 2000)
        assert params.d_c == pytest.approx(3 * base.d_c)
        assert params.d_cp == pytest.approx(3 * base.d_cp)
        assert params.d_m == base.d_m

    def test_tree(self):
        params = scenario_params("TREE", 2000)
        assert params.d_m == params.d_cp == params.d_c == 1.0

    def test_constant_mhd_size_independent(self):
        small = scenario_params("CONSTANT-MHD", 1000)
        large = scenario_params("CONSTANT-MHD", 9000)
        assert small.d_m == large.d_m == 2.0
        assert small.d_c == large.d_c == 1.0


class TestPeering:
    def test_no_peering(self):
        params = scenario_params("NO-PEERING", 1500)
        assert params.p_m == params.p_cp_m == params.p_cp_cp == 0.0

    def test_strong_core_peering_doubles_pm(self):
        base = baseline_params(1500)
        params = scenario_params("STRONG-CORE-PEERING", 1500)
        assert params.p_m == pytest.approx(2 * base.p_m)
        assert params.p_cp_m == base.p_cp_m

    def test_strong_edge_peering_triples_cp(self):
        base = baseline_params(1500)
        params = scenario_params("STRONG-EDGE-PEERING", 1500)
        assert params.p_cp_m == pytest.approx(3 * base.p_cp_m)
        assert params.p_cp_cp == pytest.approx(3 * base.p_cp_cp)
        assert params.p_m == base.p_m


class TestProviderPreference:
    def test_prefer_middle(self):
        params = scenario_params("PREFER-MIDDLE", 1500)
        assert params.t_cp == 0.0
        assert params.t_c == 0.0
        assert params.max_t_providers == 1
        assert params.max_m_providers is None

    def test_prefer_top(self):
        params = scenario_params("PREFER-TOP", 1500)
        assert params.max_m_providers == 1
        assert params.max_t_providers is None
        # T-selection probabilities unchanged from Baseline
        assert params.t_c == 0.125
