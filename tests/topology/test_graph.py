"""Tests for the ASGraph data structure."""

import pytest

from repro.errors import TopologyError
from repro.topology.graph import ASGraph
from repro.topology.types import NodeType, Relationship


def make_pair():
    graph = ASGraph()
    graph.add_node(0, NodeType.T, [0])
    graph.add_node(1, NodeType.C, [0])
    return graph


class TestNodes:
    def test_add_and_lookup(self):
        graph = make_pair()
        assert len(graph) == 2
        assert 0 in graph and 1 in graph and 2 not in graph
        assert graph.node(0).node_type is NodeType.T
        assert graph.node(1).regions == frozenset({0})

    def test_duplicate_id_rejected(self):
        graph = make_pair()
        with pytest.raises(TopologyError, match="duplicate"):
            graph.add_node(0, NodeType.C, [0])

    def test_empty_regions_rejected(self):
        graph = ASGraph()
        with pytest.raises(TopologyError, match="region"):
            graph.add_node(0, NodeType.C, [])

    def test_unknown_node_lookup(self):
        graph = make_pair()
        with pytest.raises(TopologyError, match="unknown"):
            graph.node(99)

    def test_nodes_of_type(self):
        graph = make_pair()
        assert graph.nodes_of_type(NodeType.T) == [0]
        assert graph.nodes_of_type(NodeType.C) == [1]
        assert graph.nodes_of_type(NodeType.M) == []

    def test_shares_region(self):
        graph = ASGraph()
        a = graph.add_node(0, NodeType.M, [0, 1])
        b = graph.add_node(1, NodeType.M, [1, 2])
        c = graph.add_node(2, NodeType.M, [3])
        assert a.shares_region_with(b)
        assert not a.shares_region_with(c)


class TestLinks:
    def test_transit_link_relationships(self):
        graph = make_pair()
        graph.add_transit_link(customer=1, provider=0)
        assert graph.relationship(1, 0) is Relationship.PROVIDER
        assert graph.relationship(0, 1) is Relationship.CUSTOMER
        assert graph.customers_of(0) == [1]
        assert graph.providers_of(1) == [0]

    def test_peering_link_symmetric(self):
        graph = make_pair()
        graph.add_peering_link(0, 1)
        assert graph.relationship(0, 1) is Relationship.PEER
        assert graph.relationship(1, 0) is Relationship.PEER
        assert graph.peers_of(0) == [1]

    def test_self_loop_rejected(self):
        graph = make_pair()
        with pytest.raises(TopologyError, match="self-loop"):
            graph.add_transit_link(0, 0)

    def test_parallel_link_rejected(self):
        graph = make_pair()
        graph.add_transit_link(1, 0)
        with pytest.raises(TopologyError, match="parallel"):
            graph.add_peering_link(0, 1)

    def test_unknown_endpoint_rejected(self):
        graph = make_pair()
        with pytest.raises(TopologyError, match="unknown"):
            graph.add_transit_link(1, 5)

    def test_provider_loop_rejected(self):
        graph = ASGraph()
        for i in range(3):
            graph.add_node(i, NodeType.M, [0])
        graph.add_transit_link(1, 0)  # 0 provides 1
        graph.add_transit_link(2, 1)  # 1 provides 2
        with pytest.raises(TopologyError, match="loop"):
            graph.add_transit_link(0, 2)  # 2 provides 0 -> cycle

    def test_peering_inside_customer_tree_rejected(self):
        graph = ASGraph()
        for i in range(3):
            graph.add_node(i, NodeType.M, [0])
        graph.add_transit_link(1, 0)
        graph.add_transit_link(2, 1)
        with pytest.raises(TopologyError, match="customer tree"):
            graph.add_peering_link(0, 2)

    def test_remove_link(self):
        graph = make_pair()
        graph.add_transit_link(1, 0)
        rel = graph.remove_link(1, 0)
        assert rel is Relationship.PROVIDER
        assert graph.degree(0) == 0
        with pytest.raises(TopologyError):
            graph.remove_link(1, 0)

    def test_edges_yields_each_link_once(self):
        graph = ASGraph()
        for i in range(4):
            graph.add_node(i, NodeType.M, [0])
        graph.add_transit_link(1, 0)
        graph.add_transit_link(2, 0)
        graph.add_peering_link(1, 2)
        graph.add_peering_link(3, 2)
        edges = list(graph.edges())
        assert len(edges) == 4
        assert graph.edge_count() == 4
        transit = [(u, v) for u, v, r in edges if r is Relationship.PROVIDER]
        assert set(transit) == {(1, 0), (2, 0)}  # customer first
        peers = [(u, v) for u, v, r in edges if r is Relationship.PEER]
        assert all(u < v for u, v in peers)


class TestDegrees:
    def test_degree_breakdown(self, diamond):
        # T0: peer T1, customers M2, M3
        assert diamond.degree(0) == 3
        assert diamond.peering_degree(0) == 1
        assert diamond.transit_degree(0) == 2
        assert diamond.multihoming_degree(3) == 2  # M3 -> T0, T1
        assert diamond.multihoming_degree(0) == 0


class TestCustomerTree:
    def test_tree_contents(self, diamond):
        assert diamond.customer_tree(0) == {2, 3, 4}
        assert diamond.customer_tree(1) == {3, 4}
        assert diamond.customer_tree(2) == {4}
        assert diamond.customer_tree(4) == set()

    def test_is_in_customer_tree(self, diamond):
        assert diamond.is_in_customer_tree(ancestor=0, descendant=4)
        assert diamond.is_in_customer_tree(ancestor=1, descendant=4)
        assert not diamond.is_in_customer_tree(ancestor=2, descendant=3)
        assert not diamond.is_in_customer_tree(ancestor=4, descendant=0)
        assert not diamond.is_in_customer_tree(ancestor=0, descendant=0)

    def test_all_customer_tree_sizes(self, diamond):
        sizes = diamond.all_customer_tree_sizes()
        assert sizes == {0: 3, 1: 2, 2: 1, 3: 1, 4: 0}

    def test_sizes_count_multihomed_once(self):
        """A multihomed descendant appears once in an ancestor's cone."""
        graph = ASGraph()
        for i in range(4):
            graph.add_node(i, NodeType.M, [0])
        graph.add_transit_link(1, 0)
        graph.add_transit_link(2, 0)
        graph.add_transit_link(3, 1)
        graph.add_transit_link(3, 2)  # 3 multihomed under both 1 and 2
        sizes = graph.all_customer_tree_sizes()
        assert sizes[0] == 3  # {1, 2, 3}, not 4


class TestSummaries:
    def test_type_counts(self, diamond):
        counts = diamond.type_counts()
        assert counts[NodeType.T] == 2
        assert counts[NodeType.M] == 2
        assert counts[NodeType.C] == 1
        assert counts[NodeType.CP] == 0

    def test_repr_mentions_scenario(self, diamond):
        assert "diamond" in repr(diamond)
