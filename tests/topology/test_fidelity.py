"""Tests for the dK-2 / clustering / betweenness fidelity metrics."""

from pathlib import Path

import networkx as nx
import pytest

from tests.conftest import build_chain, build_diamond
from repro.errors import ParameterError
from repro.measured import load_serial1
from repro.topology.compare import topology_fidelity_report
from repro.topology.generator import generate_topology
from repro.topology.metrics import (
    approximate_betweenness,
    clustering_spectrum,
    joint_degree_distribution,
    to_networkx,
)
from repro.topology.params import baseline_params

FIXTURE = Path(__file__).parent / "data" / "fixture_serial1.txt"


@pytest.fixture(scope="module")
def generated():
    return generate_topology(baseline_params(150), seed=1)


@pytest.fixture(scope="module")
def measured():
    graph, _ = load_serial1(FIXTURE)
    return graph


class TestJointDegreeDistribution:
    def test_counts_every_edge_once(self, generated):
        histogram = joint_degree_distribution(generated)
        assert sum(histogram.values()) == generated.edge_count()

    def test_pairs_are_unordered(self, generated):
        assert all(lo <= hi for lo, hi in joint_degree_distribution(generated))

    def test_diamond(self):
        graph = build_diamond()
        histogram = joint_degree_distribution(graph)
        assert sum(histogram.values()) == graph.edge_count()


class TestClusteringSpectrum:
    def test_matches_networkx_per_degree(self, generated):
        spectrum = clustering_spectrum(generated)
        nx_graph = to_networkx(generated)
        nx_clustering = nx.clustering(nx_graph)
        for degree, value in spectrum.items():
            nodes = [
                v for v in generated.node_ids if generated.degree(v) == degree
            ]
            expected = sum(nx_clustering[v] for v in nodes) / len(nodes)
            assert value == pytest.approx(expected)

    def test_min_degree_excludes_leaves(self):
        spectrum = clustering_spectrum(build_chain(4))
        assert 1 not in spectrum


class TestApproximateBetweenness:
    def test_full_pivots_match_networkx(self, measured):
        ours = approximate_betweenness(measured)
        theirs = nx.betweenness_centrality(to_networkx(measured))
        for node_id in measured.node_ids:
            assert ours[node_id] == pytest.approx(theirs[node_id], abs=1e-12)

    def test_pivot_sample_is_seeded(self, measured):
        a = approximate_betweenness(measured, pivots=24, seed=5)
        b = approximate_betweenness(measured, pivots=24, seed=5)
        c = approximate_betweenness(measured, pivots=24, seed=6)
        assert a == b
        assert a != c

    def test_pivot_estimate_tracks_exact(self, measured):
        exact = approximate_betweenness(measured)
        estimate = approximate_betweenness(measured, pivots=64, seed=0)
        top_exact = sorted(exact, key=exact.get, reverse=True)[:5]
        top_estimate = sorted(estimate, key=estimate.get, reverse=True)[:10]
        assert set(top_exact) <= set(top_estimate)

    def test_tiny_graph_all_zero(self):
        assert set(approximate_betweenness(build_chain(2)).values()) == {0.0}

    def test_bad_pivot_count(self, measured):
        with pytest.raises(ParameterError, match="pivots"):
            approximate_betweenness(measured, pivots=0)


class TestFidelityReport:
    def test_deterministic_across_runs(self, generated, measured):
        a = topology_fidelity_report(generated, measured, pivots=32, seed=3)
        b = topology_fidelity_report(generated, measured, pivots=32, seed=3)
        assert a.to_dict() == b.to_dict()

    def test_self_distance_is_zero(self, measured):
        report = topology_fidelity_report(measured, measured, seed=0)
        assert report.jdd_distance == 0.0
        assert report.clustering_spectrum_distance == 0.0
        assert report.clustering_spectrum_disjoint == 0
        assert report.betweenness_ks_statistic == 0.0
        assert report.degree_ks_statistic == 0.0

    def test_distances_are_bounded(self, generated, measured):
        report = topology_fidelity_report(generated, measured, seed=0)
        for name, value in report.distances().items():
            assert 0.0 <= value <= 1.0, name
        assert report.pivots == min(64, len(generated), len(measured))
        assert report.n_generated == len(generated)
        assert report.n_measured == len(measured)

    def test_generated_beats_degenerate_star(self, generated, measured):
        # A same-size graph with completely different structure must be
        # farther from the measured snapshot than the generative model.
        from repro.topology.graph import ASGraph
        from repro.topology.types import NodeType

        star = ASGraph(scenario="star")
        star.add_node(0, NodeType.T, [0])
        for leaf in range(1, len(measured)):
            star.add_node(leaf, NodeType.C, [0])
            star.add_transit_link(customer=leaf, provider=0)
        close = topology_fidelity_report(generated, measured, seed=0)
        far = topology_fidelity_report(star, measured, seed=0)
        assert far.jdd_distance > close.jdd_distance
        assert far.degree_ks_statistic > close.degree_ks_statistic
