"""Tests for hierarchy-depth analysis."""

import pytest

from repro.errors import TopologyError
from repro.topology.generator import generate_topology
from repro.topology.graph import ASGraph
from repro.topology.params import baseline_params
from repro.topology.scenarios import scenario_params
from repro.topology.tiers import (
    depth_histogram,
    hierarchy_depth,
    mean_chain_length,
    provider_chain_lengths,
    tier_map,
    tier_of,
)
from repro.topology.types import NodeType


class TestTierMap:
    def test_diamond_tiers(self, diamond):
        tiers = tier_map(diamond)
        assert tiers[0] == 1 and tiers[1] == 1   # T clique
        assert tiers[2] == 2 and tiers[3] == 2   # M nodes
        assert tiers[4] == 3                     # the stub

    def test_chain_tiers(self, chain):
        tiers = tier_map(chain)
        assert [tiers[i] for i in range(4)] == [1, 2, 3, 4]
        assert tier_of(chain, 3) == 4

    def test_multihomed_takes_shortest_climb(self):
        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])
        graph.add_node(1, NodeType.M, [0])
        graph.add_node(2, NodeType.C, [0])
        graph.add_transit_link(1, 0)
        graph.add_transit_link(2, 1)
        graph.add_transit_link(2, 0)  # also a direct T customer
        assert tier_map(graph)[2] == 2  # shortest path to the top wins

    def test_no_hierarchy_rejected(self):
        graph = ASGraph()
        graph.add_node(0, NodeType.M, [0])
        graph.add_node(1, NodeType.M, [0])
        graph.add_transit_link(1, 0)
        # node 0 is provider-free so this works; strip that by making a
        # two-node mutual... impossible via API; instead: empty graph
        empty = ASGraph()
        with pytest.raises(TopologyError):
            tier_map(empty)


class TestDepth:
    def test_depths_of_extreme_scenarios(self):
        flat = generate_topology(scenario_params("NO-MIDDLE", 200), seed=1)
        assert hierarchy_depth(flat) == 2
        baseline = generate_topology(baseline_params(400), seed=1)
        assert hierarchy_depth(baseline) >= 3

    def test_prefer_middle_deepens_hierarchy(self):
        base = generate_topology(baseline_params(400), seed=2)
        deep = generate_topology(scenario_params("PREFER-MIDDLE", 400), seed=2)
        assert mean_chain_length(deep) > mean_chain_length(base)

    def test_histogram_sums_to_n(self, diamond):
        histogram = depth_histogram(diamond)
        assert sum(histogram.values()) == len(diamond)
        assert histogram[1] == 2


class TestChainLengths:
    def test_chain(self, chain):
        lengths = provider_chain_lengths(chain)
        assert [lengths[i] for i in range(4)] == [0, 1, 2, 3]

    def test_longest_not_shortest(self):
        """Chain length takes the deepest ancestry, unlike tier_map."""
        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])
        graph.add_node(1, NodeType.M, [0])
        graph.add_node(2, NodeType.C, [0])
        graph.add_transit_link(1, 0)
        graph.add_transit_link(2, 1)
        graph.add_transit_link(2, 0)
        lengths = provider_chain_lengths(graph)
        assert lengths[2] == 2  # via M1, the longer climb

    def test_mean_chain_length_generated(self):
        graph = generate_topology(baseline_params(300), seed=3)
        mean = mean_chain_length(graph)
        assert 1.0 < mean < 5.0
