"""Tests for topology validation (violations must be detected)."""

import pytest

from repro.errors import TopologyError
from repro.topology.graph import ASGraph
from repro.topology.types import NodeType
from repro.topology.validation import find_violations, validate


def build(*nodes, transit=(), peering=()):
    graph = ASGraph()
    for node_id, node_type in nodes:
        graph.add_node(node_id, node_type, [0])
    for customer, provider in transit:
        graph.add_transit_link(customer, provider)
    for a, b in peering:
        graph.add_peering_link(a, b)
    return graph


class TestRoleChecks:
    def test_orphan_m_node_detected(self):
        graph = build((0, NodeType.T), (1, NodeType.M))
        violations = find_violations(graph)
        assert any("no provider" in v for v in violations)

    def test_stub_with_customers_detected(self):
        graph = build((0, NodeType.CP), (1, NodeType.C))
        graph.add_transit_link(1, 0)  # CP 0 acquires a customer
        violations = find_violations(graph)
        assert any("has customers" in v for v in violations)

    def test_c_node_with_peers_detected(self):
        graph = build((0, NodeType.T), (1, NodeType.C), transit=())
        graph.add_peering_link(0, 1)
        violations = find_violations(graph)
        assert any("C node" in v and "peers" in v for v in violations)

    def test_valid_diamond_passes(self, diamond):
        assert find_violations(diamond) == []
        validate(diamond)  # no raise


class TestCliqueCheck:
    def test_missing_t_link_detected(self):
        graph = build((0, NodeType.T), (1, NodeType.T), (2, NodeType.C))
        graph.add_transit_link(2, 0)
        violations = find_violations(graph)
        assert any("not connected" in v for v in violations)


class TestValidateRaises:
    def test_validate_raises_with_summary(self):
        graph = build((0, NodeType.T), (1, NodeType.M))
        with pytest.raises(TopologyError, match="violation"):
            validate(graph)


class TestRegionCheck:
    def test_t_node_missing_region_detected(self):
        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])  # only region 0
        graph.add_node(1, NodeType.C, [0, 1])  # world has regions {0, 1}
        graph.add_transit_link(1, 0)
        violations = find_violations(graph)
        assert any("all regions" in v for v in violations)

    def test_cross_region_link_detected(self):
        graph = ASGraph()
        graph.add_node(0, NodeType.M, [0, 1])
        graph.add_node(1, NodeType.M, [1])
        graph.add_node(2, NodeType.M, [2])
        graph.add_transit_link(1, 0)
        graph.add_transit_link(2, 0)  # 0 spans {0,1}; 2 lives in {2}
        violations = find_violations(graph)
        assert any("disjoint regions" in v for v in violations)
