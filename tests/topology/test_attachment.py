"""Tests for attachment helpers (preferential choice, link-count draws)."""

import random

import pytest

from repro.errors import ParameterError
from repro.topology.attachment import (
    draw_link_count,
    preferential_choice,
    uniform_choice,
)


class TestPreferentialChoice:
    def test_empty_candidates(self):
        with pytest.raises(ParameterError):
            preferential_choice([], lambda _: 1, random.Random(0))

    def test_single_candidate(self):
        rng = random.Random(0)
        assert preferential_choice([7], lambda _: 0, rng) == 7

    def test_weight_proportionality(self):
        """A candidate with weight 99 is drawn ~50x more often than weight 1."""
        rng = random.Random(5)
        weights = {0: 99, 1: 1}
        draws = [
            preferential_choice([0, 1], weights.__getitem__, rng)
            for _ in range(5000)
        ]
        heavy = draws.count(0)
        # expected ratio (99+1)/(1+1) = 50 -> p(0) = 50/51 ~ 0.98
        assert heavy / 5000 > 0.94

    def test_zero_weight_still_selectable(self):
        """The +1 offset keeps newborn nodes reachable."""
        rng = random.Random(9)
        draws = {
            preferential_choice([0, 1], lambda _: 0, rng) for _ in range(200)
        }
        assert draws == {0, 1}


class TestUniformChoice:
    def test_empty(self):
        with pytest.raises(ParameterError):
            uniform_choice([], random.Random(0))

    def test_covers_all(self):
        rng = random.Random(2)
        draws = {uniform_choice([1, 2, 3], rng) for _ in range(200)}
        assert draws == {1, 2, 3}


class TestDrawLinkCount:
    def test_negative_average_rejected(self):
        with pytest.raises(ParameterError):
            draw_link_count(-0.5, random.Random(0))

    def test_zero_average(self):
        rng = random.Random(0)
        assert all(draw_link_count(0.0, rng) == 0 for _ in range(20))

    def test_minimum_respected(self):
        rng = random.Random(1)
        assert all(
            draw_link_count(2.5, rng, minimum=1) >= 1 for _ in range(500)
        )

    def test_average_at_minimum_is_deterministic(self):
        rng = random.Random(1)
        assert all(draw_link_count(1.0, rng, minimum=1) == 1 for _ in range(50))

    def test_mean_preserved_provider_style(self):
        """Provider draws (minimum=1) keep the requested mean."""
        rng = random.Random(3)
        for average in (1.05, 2.0, 2.25, 4.5):
            draws = [
                draw_link_count(average, rng, minimum=1) for _ in range(20000)
            ]
            assert sum(draws) / len(draws) == pytest.approx(average, rel=0.05)

    def test_mean_preserved_fractional_peering(self):
        """Tiny peering averages become Bernoulli draws with the right mean."""
        rng = random.Random(4)
        draws = [draw_link_count(0.05, rng, minimum=0) for _ in range(40000)]
        assert sum(draws) / len(draws) == pytest.approx(0.05, rel=0.15)
        assert set(draws) <= {0, 1}

    def test_upper_bound_roughly_twice_average(self):
        rng = random.Random(5)
        draws = [draw_link_count(3.0, rng, minimum=1) for _ in range(5000)]
        assert max(draws) <= 6  # 2*average, +1 from probabilistic rounding
