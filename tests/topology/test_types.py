"""Tests for the node-type / relationship vocabulary."""

import pytest

from repro.topology.types import (
    LOCAL_PREFERENCE,
    NODE_TYPE_ORDER,
    RELATIONSHIP_ORDER,
    NodeType,
    Relationship,
)


class TestNodeType:
    def test_transit_types(self):
        assert NodeType.T.is_transit
        assert NodeType.M.is_transit
        assert not NodeType.CP.is_transit
        assert not NodeType.C.is_transit

    def test_stub_types(self):
        assert NodeType.CP.is_stub
        assert NodeType.C.is_stub
        assert not NodeType.T.is_stub
        assert not NodeType.M.is_stub

    def test_only_c_nodes_cannot_peer(self):
        assert not NodeType.C.may_peer
        assert all(t.may_peer for t in NodeType if t is not NodeType.C)

    def test_order_covers_all_types(self):
        assert set(NODE_TYPE_ORDER) == set(NodeType)
        assert NODE_TYPE_ORDER[0] is NodeType.T

    def test_value_round_trip(self):
        for node_type in NodeType:
            assert NodeType(node_type.value) is node_type

    def test_str(self):
        assert str(NodeType.CP) == "CP"


class TestRelationship:
    def test_inverse_pairs(self):
        assert Relationship.CUSTOMER.inverse is Relationship.PROVIDER
        assert Relationship.PROVIDER.inverse is Relationship.CUSTOMER
        assert Relationship.PEER.inverse is Relationship.PEER

    def test_inverse_is_involution(self):
        for rel in Relationship:
            assert rel.inverse.inverse is rel

    def test_order_covers_all(self):
        assert set(RELATIONSHIP_ORDER) == set(Relationship)

    def test_local_preference_ordering(self):
        """Customer routes outrank peer routes outrank provider routes."""
        assert (
            LOCAL_PREFERENCE[Relationship.CUSTOMER]
            > LOCAL_PREFERENCE[Relationship.PEER]
            > LOCAL_PREFERENCE[Relationship.PROVIDER]
        )

    @pytest.mark.parametrize("rel", list(Relationship))
    def test_every_relationship_has_preference(self, rel):
        assert rel in LOCAL_PREFERENCE
