"""Tests for topology metrics."""

import pytest

from repro.errors import ParameterError
from repro.topology.generator import generate_topology
from repro.topology.graph import ASGraph
from repro.topology.metrics import (
    average_valley_free_path_length,
    clustering_coefficient,
    degree_ccdf,
    degree_distribution,
    mean_multihoming_degree,
    mean_neighbor_counts,
    power_law_alpha,
    summarize,
    to_networkx,
    valley_free_path_lengths,
)
from repro.topology.params import baseline_params
from repro.topology.types import NodeType, Relationship


class TestDegreeDistribution:
    def test_histogram(self, diamond):
        histogram = degree_distribution(diamond)
        assert sum(histogram.values()) == 5
        assert histogram[3] == 2  # T0 and M3

    def test_ccdf_starts_at_one(self, diamond):
        ccdf = degree_ccdf(diamond)
        assert ccdf[0][1] == pytest.approx(1.0)
        values = [p for _, p in ccdf]
        assert values == sorted(values, reverse=True)

    def test_power_law_alpha_reasonable(self):
        graph = generate_topology(baseline_params(800), seed=1)
        alpha = power_law_alpha(graph)
        assert 1.2 < alpha < 3.5

    def test_power_law_needs_tail(self, diamond):
        with pytest.raises(ParameterError):
            power_law_alpha(diamond, d_min=100)

    def test_power_law_rejects_bad_dmin(self, diamond):
        with pytest.raises(ParameterError):
            power_law_alpha(diamond, d_min=0)


class TestValleyFreePaths:
    def test_diamond_distances(self, diamond):
        lengths = valley_free_path_lengths(diamond, 4)
        # C4 -> M2/M3 (1 hop), T0/T1 (2 hops)
        assert lengths[4] == 0
        assert lengths[2] == 1 and lengths[3] == 1
        assert lengths[0] == 2 and lengths[1] == 2

    def test_no_valley_through_stub(self):
        """Two stubs under different providers connect only via the core."""
        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])
        graph.add_node(1, NodeType.M, [0])
        graph.add_node(2, NodeType.M, [0])
        graph.add_node(3, NodeType.C, [0])
        graph.add_node(4, NodeType.C, [0])
        graph.add_transit_link(1, 0)
        graph.add_transit_link(2, 0)
        graph.add_transit_link(3, 1)
        graph.add_transit_link(4, 2)
        lengths = valley_free_path_lengths(graph, 3)
        assert lengths[4] == 4  # 3 -> 1 -> 0 -> 2 -> 4

    def test_peer_used_at_most_once(self):
        """peer-peer-down is a valley and must not be used."""
        graph = ASGraph()
        for i in range(4):
            graph.add_node(i, NodeType.M, [0])
        # 0 -- 1 -- 2 peering chain, 3 is customer of 2
        graph.add_node(4, NodeType.T, [0])
        graph.add_transit_link(0, 4)
        graph.add_transit_link(1, 4)
        graph.add_transit_link(2, 4)
        graph.add_transit_link(3, 2)
        graph.add_peering_link(0, 1)
        graph.add_peering_link(1, 2)
        lengths = valley_free_path_lengths(graph, 0)
        # 0 -> 1 is one peering hop; 0 -> 2 must go via T (0,4,2), not (0,1,2)
        assert lengths[1] == 1
        assert lengths[2] == 2
        assert lengths[3] == 3

    def test_average_path_length_around_four(self):
        graph = generate_topology(baseline_params(600), seed=2)
        avg = average_valley_free_path_length(graph, sources=40)
        assert 2.5 < avg < 5.5


class TestClustering:
    def test_triangle_clique(self):
        graph = ASGraph()
        for i in range(3):
            graph.add_node(i, NodeType.T, [0])
        graph.add_peering_link(0, 1)
        graph.add_peering_link(1, 2)
        graph.add_peering_link(0, 2)
        assert clustering_coefficient(graph) == pytest.approx(1.0)

    def test_star_has_zero_clustering(self):
        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])
        for i in range(1, 5):
            graph.add_node(i, NodeType.C, [0])
            graph.add_transit_link(i, 0)
        assert clustering_coefficient(graph) == 0.0

    def test_baseline_clustering_strong(self):
        graph = generate_topology(baseline_params(800), seed=3)
        value = clustering_coefficient(graph)
        assert value > 0.05


class TestAggregates:
    def test_mean_mhd(self, diamond):
        assert mean_multihoming_degree(diamond, NodeType.M) == pytest.approx(1.5)
        assert mean_multihoming_degree(diamond, NodeType.T) == 0.0

    def test_mean_neighbor_counts(self, diamond):
        counts = mean_neighbor_counts(diamond, NodeType.T)
        assert counts[Relationship.PEER] == pytest.approx(1.0)
        assert counts[Relationship.CUSTOMER] == pytest.approx(1.5)
        assert counts[Relationship.PROVIDER] == 0.0

    def test_empty_type_returns_zero(self, diamond):
        assert mean_multihoming_degree(diamond, NodeType.CP) == 0.0
        counts = mean_neighbor_counts(diamond, NodeType.CP)
        assert all(v == 0.0 for v in counts.values())

    def test_summarize_keys(self):
        graph = generate_topology(baseline_params(150), seed=0)
        summary = summarize(graph, path_length_sources=10)
        assert summary["n"] == 150
        assert summary["links"] > 150
        assert 0 <= summary["clustering"] <= 1


class TestNetworkxExport:
    def test_to_networkx_preserves_structure(self, diamond):
        nx_graph = to_networkx(diamond)
        assert nx_graph.number_of_nodes() == 5
        assert nx_graph.number_of_edges() == diamond.edge_count()
        assert nx_graph.nodes[0]["node_type"] == "T"
        assert nx_graph.edges[0, 1]["relationship"] == "peer"
        assert nx_graph.edges[4, 2]["relationship"] == "transit"
