"""Tests for the topology generator."""

import random

import pytest

from repro.errors import TopologyError
from repro.topology.generator import generate_topology
from repro.topology.graph import ASGraph
from repro.topology.metrics import (
    mean_multihoming_degree,
    mean_peering_degree,
)
from repro.topology.params import baseline_params
from repro.topology.scenarios import scenario_params
from repro.topology.types import NodeType, Relationship
from repro.topology.validation import find_violations


class TestBasicGeneration:
    def test_node_counts_match_params(self):
        params = baseline_params(300)
        graph = generate_topology(params, seed=0)
        counts = graph.type_counts()
        assert counts[NodeType.T] == params.n_t
        assert counts[NodeType.M] == params.n_m
        assert counts[NodeType.CP] == params.n_cp
        assert counts[NodeType.C] == params.n_c

    def test_deterministic_for_seed(self):
        a = generate_topology(baseline_params(200), seed=5)
        b = generate_topology(baseline_params(200), seed=5)
        assert list(a.edges()) == list(b.edges())
        assert [n.regions for n in a.nodes()] == [n.regions for n in b.nodes()]

    def test_different_seeds_differ(self):
        a = generate_topology(baseline_params(200), seed=1)
        b = generate_topology(baseline_params(200), seed=2)
        assert list(a.edges()) != list(b.edges())

    def test_seed_and_rng_mutually_exclusive(self):
        with pytest.raises(TopologyError):
            generate_topology(baseline_params(100), seed=1, rng=random.Random(1))

    def test_explicit_rng(self):
        a = generate_topology(baseline_params(150), rng=random.Random(3))
        b = generate_topology(baseline_params(150), seed=3)
        assert list(a.edges()) == list(b.edges())

    def test_t_clique_complete(self):
        graph = generate_topology(baseline_params(200, n_t=5), seed=1)
        t_nodes = graph.nodes_of_type(NodeType.T)
        for i, a in enumerate(t_nodes):
            for b in t_nodes[i + 1 :]:
                assert graph.relationship(a, b) is Relationship.PEER

    def test_all_invariants_hold(self):
        graph = generate_topology(baseline_params(400), seed=9)
        assert find_violations(graph) == []


class TestDegreeTargets:
    def test_mhd_close_to_spec(self):
        params = baseline_params(1200)
        graph = generate_topology(params, seed=2)
        assert mean_multihoming_degree(graph, NodeType.M) == pytest.approx(
            params.d_m, rel=0.25
        )
        assert mean_multihoming_degree(graph, NodeType.C) == pytest.approx(
            params.d_c, rel=0.15
        )

    def test_peering_degree_close_to_spec(self):
        params = baseline_params(1200)
        graph = generate_topology(params, seed=2)
        # Each M node initiates ~p_m links; targets also gain degree, so the
        # realized mean is up to ~2x the initiation average.
        realized = mean_peering_degree(graph, NodeType.M)
        assert params.p_m * 0.8 <= realized <= params.p_m * 2.5

    def test_t_provider_fraction(self):
        """~37.5% of M provider links should terminate at T nodes."""
        graph = generate_topology(baseline_params(2000), seed=4)
        t_links = 0
        total = 0
        for m in graph.nodes_of_type(NodeType.M):
            for p in graph.providers_of(m):
                total += 1
                if graph.node(p).node_type is NodeType.T:
                    t_links += 1
        assert 0.25 < t_links / total < 0.55


class TestScenarioGeneration:
    @pytest.mark.parametrize(
        "scenario",
        [
            "NO-MIDDLE",
            "RICH-MIDDLE",
            "TRANSIT-CLIQUE",
            "DENSE-CORE",
            "DENSE-EDGE",
            "TREE",
            "CONSTANT-MHD",
            "NO-PEERING",
            "STRONG-CORE-PEERING",
            "STRONG-EDGE-PEERING",
            "PREFER-MIDDLE",
            "PREFER-TOP",
        ],
    )
    def test_all_scenarios_generate_valid_topologies(self, scenario):
        params = scenario_params(scenario, 250)
        graph = generate_topology(params, seed=1)
        assert len(graph) == 250
        assert find_violations(graph) == []

    def test_no_middle_has_no_m_nodes(self):
        graph = generate_topology(scenario_params("NO-MIDDLE", 300), seed=1)
        assert graph.nodes_of_type(NodeType.M) == []
        # every stub must still find a provider (a T node)
        for c in graph.nodes_of_type(NodeType.C):
            assert graph.providers_of(c)

    def test_tree_is_single_homed(self):
        graph = generate_topology(scenario_params("TREE", 300), seed=1)
        for node in graph.nodes():
            if node.node_type is not NodeType.T:
                assert len(graph.providers_of(node.node_id)) == 1

    def test_no_peering_only_t_clique_peers(self):
        graph = generate_topology(scenario_params("NO-PEERING", 300), seed=1)
        for node in graph.nodes():
            if node.node_type is not NodeType.T:
                assert graph.peers_of(node.node_id) == []

    def test_prefer_middle_caps_t_providers_of_m(self):
        graph = generate_topology(scenario_params("PREFER-MIDDLE", 400), seed=1)
        for m in graph.nodes_of_type(NodeType.M):
            t_providers = [
                p
                for p in graph.providers_of(m)
                if graph.node(p).node_type is NodeType.T
            ]
            assert len(t_providers) <= 1

    def test_prefer_top_caps_m_providers(self):
        graph = generate_topology(scenario_params("PREFER-TOP", 400), seed=1)
        for node in graph.nodes():
            if node.node_type is NodeType.T:
                continue
            m_providers = [
                p
                for p in graph.providers_of(node.node_id)
                if graph.node(p).node_type is NodeType.M
            ]
            assert len(m_providers) <= 1

    def test_dense_core_triples_m_mhd(self):
        base = generate_topology(baseline_params(600), seed=3)
        dense = generate_topology(scenario_params("DENSE-CORE", 600), seed=3)
        assert mean_multihoming_degree(dense, NodeType.M) > 2.0 * mean_multihoming_degree(
            base, NodeType.M
        )


class TestEdgeCases:
    def test_tiny_topology(self):
        graph = generate_topology(baseline_params(60), seed=1)
        assert len(graph) == 60
        assert find_violations(graph) == []

    def test_single_region(self):
        graph = generate_topology(baseline_params(200, regions=1), seed=1)
        assert find_violations(graph) == []

    def test_many_regions(self):
        graph = generate_topology(baseline_params(200, regions=10), seed=1)
        assert find_violations(graph) == []

    def test_returns_asgraph(self):
        assert isinstance(generate_topology(baseline_params(80), seed=0), ASGraph)
