"""Tests for topology serialization (JSON and as-rel formats)."""

import pytest

from repro.errors import SerializationError
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.serialization import (
    from_json_dict,
    load_as_rel,
    load_json,
    save_as_rel,
    save_json,
    to_json_dict,
)
from repro.topology.types import NodeType, Relationship


class TestJsonRoundTrip:
    def test_round_trip_preserves_everything(self, diamond, tmp_path):
        path = tmp_path / "topo.json"
        save_json(diamond, path)
        loaded = load_json(path)
        assert loaded.scenario == diamond.scenario
        assert len(loaded) == len(diamond)
        assert list(loaded.edges()) == list(diamond.edges())
        for node_id in diamond.node_ids:
            assert loaded.node(node_id).node_type is diamond.node(node_id).node_type
            assert loaded.node(node_id).regions == diamond.node(node_id).regions

    def test_round_trip_generated(self, tmp_path):
        graph = generate_topology(baseline_params(200), seed=8)
        path = tmp_path / "gen.json"
        save_json(graph, path)
        loaded = load_json(path)
        assert list(loaded.edges()) == list(graph.edges())

    def test_dict_round_trip(self, diamond):
        rebuilt = from_json_dict(to_json_dict(diamond))
        assert list(rebuilt.edges()) == list(diamond.edges())

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_json(tmp_path / "nope.json")

    def test_corrupt_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(SerializationError):
            load_json(path)

    def test_wrong_version(self, diamond):
        data = to_json_dict(diamond)
        data["format_version"] = 999
        with pytest.raises(SerializationError, match="version"):
            from_json_dict(data)

    def test_unknown_link_kind(self, diamond):
        data = to_json_dict(diamond)
        data["links"][0]["kind"] = "sibling"
        with pytest.raises(SerializationError):
            from_json_dict(data)


class TestRoundTripProperties:
    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        n=st.integers(min_value=50, max_value=150),
    )
    @settings(max_examples=15, deadline=None)
    def test_json_round_trip_any_generated_graph(self, seed, n):
        graph = generate_topology(baseline_params(n), seed=seed)
        rebuilt = from_json_dict(to_json_dict(graph))
        assert list(rebuilt.edges()) == list(graph.edges())
        for node in graph.nodes():
            twin = rebuilt.node(node.node_id)
            assert twin.node_type is node.node_type
            assert twin.regions == node.regions

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=10, deadline=None)
    def test_as_rel_round_trip_preserves_relationships(self, seed, tmp_path_factory):
        graph = generate_topology(baseline_params(100), seed=seed)
        path = tmp_path_factory.mktemp("asrel") / "graph.as-rel"
        save_as_rel(graph, path)
        loaded = load_as_rel(path)
        assert loaded.edge_count() == graph.edge_count()
        for u, v, rel in graph.edges():
            assert loaded.relationship(u, v) is rel


class TestAsRel:
    def test_round_trip_structure(self, diamond, tmp_path):
        path = tmp_path / "topo.as-rel"
        save_as_rel(diamond, path)
        loaded = load_as_rel(path)
        assert len(loaded) == len(diamond)
        assert loaded.edge_count() == diamond.edge_count()
        # relationships survive even though node types are inferred
        assert loaded.relationship(4, 2) is Relationship.PROVIDER
        assert loaded.relationship(0, 1) is Relationship.PEER

    def test_type_inference(self, diamond, tmp_path):
        path = tmp_path / "topo.as-rel"
        save_as_rel(diamond, path)
        loaded = load_as_rel(path)
        assert loaded.node(0).node_type is NodeType.T
        assert loaded.node(2).node_type is NodeType.M
        assert loaded.node(4).node_type is NodeType.C

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "mini.as-rel"
        path.write_text("# header\n\n1|2|-1\n2|3|0\n", encoding="utf-8")
        loaded = load_as_rel(path)
        assert len(loaded) == 3
        assert loaded.relationship(2, 1) is Relationship.PROVIDER

    def test_malformed_line(self, tmp_path):
        path = tmp_path / "bad.as-rel"
        path.write_text("1|2\n", encoding="utf-8")
        with pytest.raises(SerializationError, match="expected"):
            load_as_rel(path)

    def test_non_integer_field(self, tmp_path):
        path = tmp_path / "bad.as-rel"
        path.write_text("a|2|-1\n", encoding="utf-8")
        with pytest.raises(SerializationError, match="non-integer"):
            load_as_rel(path)

    def test_unknown_relationship_code(self, tmp_path):
        path = tmp_path / "bad.as-rel"
        path.write_text("1|2|7\n", encoding="utf-8")
        with pytest.raises(SerializationError, match="unknown relationship"):
            load_as_rel(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(SerializationError):
            load_as_rel(tmp_path / "nope.as-rel")
