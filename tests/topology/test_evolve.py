"""Tests for incremental topology evolution."""

import random

import pytest

from repro.errors import TopologyError
from repro.topology.evolve import evolve_topology
from repro.topology.generator import generate_topology
from repro.topology.metrics import mean_multihoming_degree
from repro.topology.params import baseline_params
from repro.topology.types import NodeType
from repro.topology.validation import find_violations


def grown_pair(n_small=200, n_large=500, seed=1):
    small = generate_topology(baseline_params(n_small), seed=seed)
    target = baseline_params(n_large, n_t=small.type_counts()[NodeType.T])
    grown = evolve_topology(small, target, seed=seed + 1)
    return grown, target


class TestGrowth:
    def test_reaches_target_counts(self):
        grown, target = grown_pair()
        counts = grown.type_counts()
        assert len(grown) == target.n
        assert counts[NodeType.M] == target.n_m
        assert counts[NodeType.CP] == target.n_cp
        assert counts[NodeType.C] == target.n_c

    def test_invariants_preserved(self):
        grown, _ = grown_pair()
        assert find_violations(grown) == []

    def test_existing_links_survive(self):
        small = generate_topology(baseline_params(200), seed=3)
        original_edges = set(small.edges())
        target = baseline_params(400, n_t=small.type_counts()[NodeType.T])
        grown = evolve_topology(small, target, seed=4)
        assert original_edges <= set(grown.edges())

    def test_mutates_in_place(self):
        small = generate_topology(baseline_params(200), seed=5)
        target = baseline_params(300, n_t=small.type_counts()[NodeType.T])
        grown = evolve_topology(small, target, seed=6)
        assert grown is small

    def test_mhd_densifies_toward_target(self):
        small = generate_topology(baseline_params(300), seed=7)
        before = mean_multihoming_degree(small, NodeType.M)
        # exaggerate: target dM well above the current mean
        target = baseline_params(600, n_t=small.type_counts()[NodeType.T]).replace(
            d_m=5.0
        )
        grown = evolve_topology(small, target, seed=8)
        after = mean_multihoming_degree(grown, NodeType.M)
        assert after > before + 0.5

    def test_multi_step_evolution(self):
        graph = generate_topology(baseline_params(150), seed=9)
        n_t = graph.type_counts()[NodeType.T]
        for n in (250, 350, 450):
            evolve_topology(graph, baseline_params(n, n_t=n_t), seed=n)
            assert len(graph) == n
            assert find_violations(graph) == []

    def test_densification_never_breaks_peering(self):
        """Regression: adding a provider link to an existing node must not
        pull an existing peering link inside a customer tree (found by the
        default-scale ext-evolution campaign)."""
        graph = generate_topology(baseline_params(400), seed=19)
        n_t = graph.type_counts()[NodeType.T]
        for n in (800, 1200):
            evolve_topology(graph, baseline_params(n, n_t=n_t), seed=n + 19)
            assert find_violations(graph) == []

    def test_would_break_peering_detected(self):
        """White-box check of the guard itself."""
        from repro.topology.evolve import _would_break_peering
        from repro.topology.graph import ASGraph

        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])
        graph.add_node(1, NodeType.M, [0])  # peers with 2
        graph.add_node(2, NodeType.M, [0])
        graph.add_node(3, NodeType.M, [0])  # customer of 1
        graph.add_transit_link(1, 0)
        graph.add_transit_link(2, 0)
        graph.add_transit_link(3, 1)
        graph.add_peering_link(1, 2)
        # transit 2 -> 3 would make 2 a member of 1's customer tree while
        # 1 still peers with 2
        assert _would_break_peering(graph, customer=2, provider=3)
        # a harmless candidate: 3 -> 2 (2 has no peered ancestors whose
        # peer lies in 3's cone)
        assert not _would_break_peering(graph, customer=3, provider=2)

    def test_deterministic(self):
        a = generate_topology(baseline_params(200), seed=11)
        b = generate_topology(baseline_params(200), seed=11)
        n_t = a.type_counts()[NodeType.T]
        target = baseline_params(350, n_t=n_t)
        evolve_topology(a, target, seed=12)
        evolve_topology(b, target, seed=12)
        assert list(a.edges()) == list(b.edges())


class TestValidation:
    def test_cannot_change_t_population(self):
        small = generate_topology(baseline_params(200, n_t=5), seed=1)
        with pytest.raises(TopologyError, match="T clique"):
            evolve_topology(small, baseline_params(400, n_t=6), seed=2)

    def test_cannot_shrink(self):
        small = generate_topology(baseline_params(400), seed=1)
        n_t = small.type_counts()[NodeType.T]
        with pytest.raises(TopologyError, match="remove"):
            evolve_topology(small, baseline_params(200, n_t=n_t), seed=2)

    def test_cannot_shrink_regions(self):
        small = generate_topology(baseline_params(200, regions=5), seed=1)
        n_t = small.type_counts()[NodeType.T]
        target = baseline_params(300, n_t=n_t, regions=2)
        with pytest.raises(TopologyError, match="region"):
            evolve_topology(small, target, seed=2)

    def test_seed_and_rng_exclusive(self):
        small = generate_topology(baseline_params(200), seed=1)
        n_t = small.type_counts()[NodeType.T]
        with pytest.raises(TopologyError):
            evolve_topology(
                small,
                baseline_params(300, n_t=n_t),
                seed=1,
                rng=random.Random(1),
            )

    def test_same_size_is_noop_for_counts(self):
        small = generate_topology(baseline_params(200), seed=13)
        n_t = small.type_counts()[NodeType.T]
        before = len(small)
        evolve_topology(small, baseline_params(200, n_t=n_t), seed=14)
        assert len(small) == before
