"""End-to-end campaign-service tests over a real socket.

The acceptance bar for the service: two clients POSTing the same spec
concurrently cost exactly one execution, and the ``campaign.json`` the
service serves is byte-identical to a direct in-process
:func:`run_campaign` — HTTP, scheduling, caching and checkpointing are
pure plumbing around the same deterministic core.

Real (tiny) campaigns run in the dedupe/cancel tests; quota, auth and
guard tests use the gated fake from ``test_scheduler`` so their timing
is fully controlled.
"""

import asyncio
import http.client
import json
import socket
import threading
import time

import pytest

from repro.api import ApiServer, CampaignScheduler
from repro.experiments import cache
from repro.experiments.campaign import run_campaign
from repro.experiments.scale import PRESETS, Scale

# reuse the gated fake execution from the scheduler tests
from tests.api.test_scheduler import fake_runs  # noqa: F401

TINY_API = Scale(name="tiny-api", sizes=(60, 80), origins=2, metric_sources=10)


@pytest.fixture()
def tiny_preset():
    PRESETS[TINY_API.name] = TINY_API
    cache.clear_cache()
    try:
        yield TINY_API.name
    finally:
        cache.clear_cache()
        PRESETS.pop(TINY_API.name, None)


class _Service:
    """An ApiServer + its event loop on a background thread."""

    def __init__(self, scheduler, api_keys=None):
        self.scheduler = scheduler
        self.loop = asyncio.new_event_loop()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.thread.start()
        self.server = ApiServer(
            scheduler, "127.0.0.1", 0, api_keys=api_keys
        )
        asyncio.run_coroutine_threadsafe(
            self.server.start(), self.loop
        ).result(timeout=10)
        self.host, self.port = self.server.address

    def _run(self):
        asyncio.set_event_loop(self.loop)
        self.loop.run_forever()

    def stop(self):
        asyncio.run_coroutine_threadsafe(
            self.server.close(), self.loop
        ).result(timeout=10)
        self.loop.call_soon_threadsafe(self.loop.stop)
        self.thread.join(timeout=10)
        self.scheduler.close()

    # ------------------------------------------------------------------
    # tiny HTTP client (stdlib only, one request per connection)
    # ------------------------------------------------------------------
    def request(self, method, path, body=None, headers=None):
        conn = http.client.HTTPConnection(self.host, self.port, timeout=30)
        try:
            conn.request(method, path, body=body, headers=headers or {})
            response = conn.getresponse()
            return response.status, response.read()
        finally:
            conn.close()

    def request_json(self, method, path, document=None, headers=None):
        body = None
        if document is not None:
            body = json.dumps(document).encode("utf-8")
        status, payload = self.request(method, path, body=body, headers=headers)
        return status, json.loads(payload)

    def stream_events(self, job_id, *, since=None, stop_after=None, timeout=60.0):
        """Read the NDJSON stream; optionally stop early via callback."""
        conn = http.client.HTTPConnection(self.host, self.port, timeout=timeout)
        path = f"/campaigns/{job_id}/events"
        if since is not None:
            path += f"?since={since}"
        events = []
        try:
            conn.request("GET", path)
            response = conn.getresponse()
            assert response.status == 200
            assert response.getheader("Content-Type") == "application/x-ndjson"
            for raw in response:
                event = json.loads(raw)
                events.append(event)
                if stop_after is not None and stop_after(event):
                    break
        finally:
            conn.close()
        return events


@pytest.fixture()
def service(tmp_path, tiny_preset):
    scheduler = CampaignScheduler(
        tmp_path / "service",
        max_running=2,
        max_queued_per_tenant=2,
        max_running_per_tenant=2,
    )
    svc = _Service(scheduler)
    yield svc
    svc.stop()


@pytest.fixture()
def fake_service(tmp_path, fake_runs):
    scheduler = CampaignScheduler(
        tmp_path / "fake-service",
        max_running=1,
        max_queued_per_tenant=2,
        max_running_per_tenant=1,
    )
    svc = _Service(scheduler)
    svc.fake_runs = fake_runs
    yield svc
    fake_runs.release.set()
    svc.stop()


def _wait_event(service, job_id, wanted, timeout=60.0):
    events = service.stream_events(
        job_id, stop_after=lambda e: e["event"] == wanted, timeout=timeout
    )
    assert events[-1]["event"] == wanted, f"never saw {wanted}: {events}"
    return events


class TestEndToEnd:
    def test_concurrent_identical_specs_one_execution(
        self, service, tmp_path, tiny_preset
    ):
        # The acceptance bar, over the real wire: a direct serial run and
        # the served artifact must be byte-identical, with one execution
        # answering both concurrent clients.
        direct_dir = tmp_path / "direct"
        run_campaign(TINY_API, seed=5, output_dir=direct_dir)
        cache.clear_cache()  # the service's execution starts cold

        spec = {"scale": tiny_preset, "seed": 5}
        replies = [None, None]

        def post(slot, key):
            replies[slot] = service.request_json(
                "POST", "/campaigns", spec, headers={"X-Api-Key": key}
            )

        threads = [
            threading.Thread(target=post, args=(0, "alice")),
            threading.Thread(target=post, args=(1, "bob")),
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        statuses = sorted(status for status, _ in replies)
        bodies = [body for _, body in replies]
        assert bodies[0]["id"] == bodies[1]["id"]
        # exactly one of the two submissions scheduled an execution; the
        # other joined it (202 scheduled / 200 joined)
        assert statuses == [200, 202]
        assert sorted(body["scheduled"] for body in bodies) == [False, True]

        job_id = bodies[0]["id"]
        _wait_event(service, job_id, "job_done")
        assert service.scheduler.executions == 1

        status, served = service.request(
            "GET", f"/campaigns/{job_id}/artifacts/campaign.json"
        )
        assert status == 200
        assert served == (direct_dir / "campaign.json").read_bytes()
        # both clients read the same bytes
        assert served == service.request(
            "GET", f"/campaigns/{job_id}/artifacts/campaign.json"
        )[1]

        status, document = service.request_json("GET", f"/campaigns/{job_id}")
        assert status == 200
        assert document["state"] == "done"
        assert document["passed"] is not None
        assert "campaign.json" in document["artifacts"]

        status, listing = service.request_json("GET", "/campaigns")
        assert status == 200
        assert job_id in [item["id"] for item in listing["campaigns"]]

    def test_event_stream_replays_and_terminates(self, service, tiny_preset):
        status, body = service.request_json(
            "POST", "/campaigns", {"scale": tiny_preset, "seed": 6}
        )
        assert status == 202
        events = _wait_event(service, body["id"], "job_done")
        kinds = [event["event"] for event in events]
        assert kinds[0] == "job_queued"
        assert "campaign_started" in kinds
        assert "experiment_done" in kinds
        assert [e["seq"] for e in events] == list(range(len(events)))
        # a replay of a finished job streams everything, then closes
        replay = service.stream_events(body["id"])
        assert replay == events
        # ?since= resumes mid-stream without replaying earlier events
        tail = service.stream_events(body["id"], since=len(events) - 2)
        assert tail == events[-2:]

    def test_cancel_mid_campaign_then_resubmit_resumes(
        self, service, tmp_path, tiny_preset
    ):
        direct_dir = tmp_path / "direct"
        run_campaign(TINY_API, seed=7, output_dir=direct_dir)
        cache.clear_cache()

        spec = {"scale": tiny_preset, "seed": 7}
        status, body = service.request_json("POST", "/campaigns", spec)
        assert status == 202
        job_id = body["id"]
        # wait for the first completed experiment, then cancel
        _wait_event(service, job_id, "experiment_done")
        status, cancel_body = service.request_json(
            "DELETE", f"/campaigns/{job_id}"
        )
        assert status == 200
        assert cancel_body["id"] == job_id
        events = service.stream_events(job_id)
        assert events[-1]["event"] in ("job_cancelled", "job_done")
        if events[-1]["event"] == "job_done":
            pytest.skip("campaign finished before the cancel landed")
        completed_before = max(
            e["done"] for e in events if e["event"] == "experiment_done"
        )
        assert completed_before >= 1

        # resubmitting the same spec resumes from the flushed state
        status, body = service.request_json("POST", "/campaigns", spec)
        assert status == 202
        assert body["id"] == job_id
        events = _wait_event(service, job_id, "job_done")
        queued = [e for e in events if e["event"] == "job_queued"]
        assert queued[-1]["resumed"] is True
        started = [e for e in events if e["event"] == "campaign_started"]
        assert started[-1]["completed"] >= completed_before

        status, served = service.request(
            "GET", f"/campaigns/{job_id}/artifacts/campaign.json"
        )
        assert status == 200
        assert served == (direct_dir / "campaign.json").read_bytes()
        assert service.scheduler.executions == 2


class TestQuotaAndGuards:
    def test_quota_rejection_over_http(self, fake_service):
        key = {"X-Api-Key": "alice"}
        status, body = fake_service.request_json(
            "POST", "/campaigns", {"scale": "smoke", "seed": 1}, headers=key
        )
        assert status == 202
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if fake_service.scheduler.get(body["id"]).state == "running":
                break
            time.sleep(0.01)
        for seed in (2, 3):
            status, _ = fake_service.request_json(
                "POST", "/campaigns", {"scale": "smoke", "seed": seed}, headers=key
            )
            assert status == 202
        status, body = fake_service.request_json(
            "POST", "/campaigns", {"scale": "smoke", "seed": 4}, headers=key
        )
        assert status == 429
        assert "queued" in body["error"]
        # a different tenant still gets through
        status, _ = fake_service.request_json(
            "POST",
            "/campaigns",
            {"scale": "smoke", "seed": 4},
            headers={"X-Api-Key": "bob"},
        )
        assert status == 202

    def test_artifact_conflict_while_running(self, fake_service):
        status, body = fake_service.request_json(
            "POST", "/campaigns", {"scale": "smoke", "seed": 9}
        )
        assert status == 202
        status, _ = fake_service.request(
            "GET", f"/campaigns/{body['id']}/artifacts/campaign.json"
        )
        assert status == 409

    def test_unknown_campaign_and_artifact_404(self, fake_service):
        assert fake_service.request("GET", "/campaigns/deadbeef")[0] == 404
        assert (
            fake_service.request("GET", "/campaigns/deadbeef/events")[0] == 404
        )
        status, body = fake_service.request_json(
            "POST", "/campaigns", {"scale": "smoke", "seed": 10}
        )
        fake_service.fake_runs.release.set()
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if fake_service.scheduler.get(body["id"]).state == "done":
                break
            time.sleep(0.01)
        assert (
            fake_service.request(
                "GET", f"/campaigns/{body['id']}/artifacts/secrets.txt"
            )[0]
            == 404
        )

    def test_no_route_404_and_method_405(self, fake_service):
        assert fake_service.request("GET", "/nope")[0] == 404
        assert fake_service.request("DELETE", "/campaigns")[0] == 405


class TestMalformedRequests:
    """The fuzz discipline, applied over a real socket."""

    def _raw(self, service, payload: bytes) -> bytes:
        with socket.create_connection(
            (service.host, service.port), timeout=10
        ) as sock:
            sock.sendall(payload)
            sock.shutdown(socket.SHUT_WR)
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
        return b"".join(chunks)

    def test_garbled_request_line(self, fake_service):
        reply = self._raw(fake_service, b"NOT HTTP\r\n\r\n")
        assert reply.startswith(b"HTTP/1.1 400 ")

    def test_oversized_content_length(self, fake_service):
        reply = self._raw(
            fake_service,
            b"POST /campaigns HTTP/1.1\r\nContent-Length: 99999999\r\n\r\n",
        )
        assert reply.startswith(b"HTTP/1.1 413 ")

    def test_chunked_refused(self, fake_service):
        reply = self._raw(
            fake_service,
            b"POST /campaigns HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        )
        assert reply.startswith(b"HTTP/1.1 501 ")

    def test_bad_json_body(self, fake_service):
        status, body = fake_service.request(
            "POST", "/campaigns", body=b"{not json"
        )
        assert status == 400

    def test_unknown_spec_field(self, fake_service):
        status, body = fake_service.request_json(
            "POST", "/campaigns", {"scale": "smoke", "surprise": 1}
        )
        assert status == 400
        assert "surprise" in body["error"]

    def test_unknown_scale(self, fake_service):
        status, _ = fake_service.request_json(
            "POST", "/campaigns", {"scale": "galactic"}
        )
        assert status == 400

    def test_malformed_since_query(self, fake_service):
        status, body = fake_service.request_json(
            "POST", "/campaigns", {"scale": "smoke", "seed": 12}
        )
        status, _ = fake_service.request(
            "GET", f"/campaigns/{body['id']}/events?since=banana"
        )
        assert status == 400


class TestAuth:
    def test_api_keys_enforced(self, tmp_path, fake_runs):
        scheduler = CampaignScheduler(tmp_path / "auth-service")
        svc = _Service(scheduler, api_keys={"sesame"})
        try:
            fake_runs.release.set()
            status, _ = svc.request_json(
                "POST", "/campaigns", {"scale": "smoke", "seed": 1}
            )
            assert status == 401
            status, _ = svc.request_json(
                "GET", "/campaigns", headers={"X-Api-Key": "wrong"}
            )
            assert status == 401
            status, _ = svc.request_json(
                "POST",
                "/campaigns",
                {"scale": "smoke", "seed": 1},
                headers={"X-Api-Key": "sesame"},
            )
            assert status == 202
            # the liveness probe stays open for unauthenticated monitors
            assert svc.request("GET", "/healthz")[0] == 200
        finally:
            svc.stop()
