"""Fuzz-discipline tests for the API's HTTP parsing and encoding.

Mirrors ``tests/dist/test_protocol.py``: every malformed input must
produce a clean :class:`ApiError` with the right status — never a hang,
an allocation blow-up, or an unhandled exception.
"""

import asyncio
import json

import pytest

from repro.api import wire
from repro.errors import ApiError


def parse(raw: bytes):
    """Drive read_request over an in-memory stream (EOF after ``raw``)."""

    async def go():
        reader = asyncio.StreamReader(limit=wire.MAX_LINE_BYTES)
        reader.feed_data(raw)
        reader.feed_eof()
        return await wire.read_request(reader)

    return asyncio.run(go())


def status_of(raw: bytes) -> int:
    with pytest.raises(ApiError) as excinfo:
        parse(raw)
    return excinfo.value.status


class TestReadRequest:
    def test_simple_get(self):
        request = parse(b"GET /campaigns?since=3 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/campaigns"
        assert request.query == {"since": "3"}
        assert request.headers["host"] == "x"
        assert request.body == b""
        assert request.path_parts() == ("campaigns",)

    def test_post_with_body(self):
        body = b'{"seed": 1}'
        raw = (
            b"POST /campaigns HTTP/1.1\r\n"
            b"Content-Length: " + str(len(body)).encode() + b"\r\n\r\n" + body
        )
        request = parse(raw)
        assert request.method == "POST"
        assert request.body == body

    def test_percent_decoded_path(self):
        request = parse(b"GET /campaigns/ab%2012 HTTP/1.1\r\n\r\n")
        assert request.path_parts() == ("campaigns", "ab 12")

    def test_header_names_lowercased(self):
        request = parse(b"GET / HTTP/1.1\r\nX-Api-Key:  k1 \r\n\r\n")
        assert request.headers["x-api-key"] == "k1"

    def test_immediate_eof_is_none(self):
        assert parse(b"") is None

    @pytest.mark.parametrize(
        "line",
        [b"GET\r\n", b"GET /\r\n", b"GET / HTTP/1.1 extra\r\n", b"\xff\xfe oops\r\n"],
    )
    def test_malformed_request_line(self, line):
        assert status_of(line + b"\r\n") == 400

    def test_unsupported_protocol(self):
        assert status_of(b"GET / HTTP/2\r\n\r\n") == 400

    @pytest.mark.parametrize("method", [b"PUT", b"PATCH", b"BREW"])
    def test_unknown_method(self, method):
        assert status_of(method + b" / HTTP/1.1\r\n\r\n") == 405

    def test_eof_inside_headers(self):
        assert status_of(b"GET / HTTP/1.1\r\nHost: x\r\n") == 400

    def test_header_without_colon(self):
        assert status_of(b"GET / HTTP/1.1\r\nnot a header\r\n\r\n") == 400

    def test_header_with_empty_name(self):
        assert status_of(b"GET / HTTP/1.1\r\n: value\r\n\r\n") == 400

    def test_too_many_headers(self):
        headers = b"".join(
            b"H%d: v\r\n" % i for i in range(wire.MAX_HEADER_COUNT + 1)
        )
        assert status_of(b"GET / HTTP/1.1\r\n" + headers + b"\r\n") == 431

    def test_oversized_header_line(self):
        raw = b"GET / HTTP/1.1\r\nX: " + b"a" * (wire.MAX_LINE_BYTES + 10) + b"\r\n\r\n"
        assert status_of(raw) == 431

    def test_chunked_refused(self):
        raw = b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
        assert status_of(raw) == 501

    @pytest.mark.parametrize("value", [b"abc", b"1.5", b""])
    def test_malformed_content_length(self, value):
        raw = b"POST / HTTP/1.1\r\nContent-Length: " + value + b"\r\n\r\nx"
        assert status_of(raw) == 400

    def test_negative_content_length(self):
        assert status_of(b"POST / HTTP/1.1\r\nContent-Length: -5\r\n\r\n") == 400

    def test_oversized_body_rejected_before_read(self):
        # The limit check must precede allocation: no body bytes are sent.
        length = wire.MAX_BODY_BYTES + 1
        raw = b"POST / HTTP/1.1\r\nContent-Length: %d\r\n\r\n" % length
        assert status_of(raw) == 413

    def test_truncated_body(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\nshort"
        assert status_of(raw) == 400


class TestResponses:
    def test_json_response_framing(self):
        raw = wire.json_response(200, {"ok": True})
        head, _, body = raw.partition(b"\r\n\r\n")
        assert head.startswith(b"HTTP/1.1 200 OK\r\n")
        assert b"Connection: close" in head
        assert b"Content-Length: %d" % len(body) in head
        assert json.loads(body) == {"ok": True}

    def test_error_response_carries_status(self):
        raw = wire.error_response(429, "slow down")
        assert raw.startswith(b"HTTP/1.1 429 Too Many Requests\r\n")
        body = raw.partition(b"\r\n\r\n")[2]
        assert json.loads(body) == {"error": "slow down", "status": 429}

    @pytest.mark.parametrize(
        ("name", "content_type"),
        [
            ("campaign.json", b"application/json"),
            ("telemetry.jsonl", b"application/x-ndjson"),
            ("campaign.md", b"text/markdown"),
            ("summary.txt", b"text/plain"),
            ("weird.bin", b"application/octet-stream"),
        ],
    )
    def test_file_response_content_types(self, name, content_type):
        raw = wire.file_response(b"payload", name)
        head = raw.partition(b"\r\n\r\n")[0]
        assert content_type in head
        assert raw.endswith(b"payload")

    def test_ndjson_line_is_one_line(self):
        line = wire.ndjson_line({"event": "x", "seq": 1})
        assert line.endswith(b"\n")
        assert line.count(b"\n") == 1
        assert json.loads(line) == {"event": "x", "seq": 1}


class TestParseSpec:
    def test_valid_spec(self):
        spec = wire.parse_spec(b'{"scale": "smoke", "seed": 3, "jobs": 2}')
        assert spec.scale == "smoke"
        assert spec.seed == 3
        assert spec.jobs == 2

    @pytest.mark.parametrize(
        "body",
        [
            b"",
            b"not json at all",
            b"\xff\xfe",
            b"[1, 2, 3]",
            b'"a string"',
            b'{"surprise": 1}',
            b'{"scale": 7}',
            b'{"seed": "zero"}',
            b'{"scale": "no-such-preset"}',
            b'{"unit_timeout": -1}',
            b'{"priority": 10000}',
        ],
    )
    def test_malformed_specs_are_client_errors(self, body):
        with pytest.raises(ApiError) as excinfo:
            wire.parse_spec(body)
        assert excinfo.value.status == 400
