"""CampaignScheduler tests: dedupe, quotas, priority, cancel, restore.

Campaign execution is replaced by a gated fake (``fake_runs``), so these
tests control exactly when a "campaign" starts, blocks, fails or
finishes — scheduling behaviour is pinned without simulating anything.
The real-execution integration lives in ``tests/api/test_server.py``.
"""

import threading
import time
from pathlib import Path
from types import SimpleNamespace

import pytest

from repro.api.scheduler import (
    ARTIFACT_NAMES,
    STATE_CANCELLED,
    STATE_DONE,
    STATE_FAILED,
    STATE_QUEUED,
    STATE_RUNNING,
    CampaignScheduler,
)
from repro.errors import ApiError, ExperimentError
from repro.experiments.campaign import (
    CampaignCancelled,
    CampaignSpec,
    CampaignSummary,
)


@pytest.fixture()
def fake_runs(monkeypatch):
    """Replace CampaignSpec.run with a gated, observable fake.

    Every run blocks until ``release`` is set (checking its cancel event
    every 10ms), then writes the four public artifacts and returns an
    empty summary.  Seeds in ``fail_seeds`` raise instead.
    """
    state = SimpleNamespace(
        started=[], release=threading.Event(), fail_seeds=set()
    )

    def run(self, *, output_dir=None, cancel=None, on_event=None, **kwargs):
        state.started.append(self.seed)
        while not state.release.wait(0.01):
            if cancel is not None and cancel.is_set():
                raise CampaignCancelled("cancelled by test")
        if cancel is not None and cancel.is_set():
            raise CampaignCancelled("cancelled by test")
        if self.seed in state.fail_seeds:
            raise ExperimentError("synthetic failure")
        out = Path(output_dir)
        out.mkdir(parents=True, exist_ok=True)
        for name in ARTIFACT_NAMES:
            (out / name).write_text(
                f"{name} for seed {self.seed}\n", encoding="utf-8"
            )
        return CampaignSummary(
            scale=self.scale,
            seed=self.seed,
            results=[],
            wall_clock_seconds=0.01,
            output_dir=out,
        )

    monkeypatch.setattr(CampaignSpec, "run", run)
    return state


@pytest.fixture()
def sched(tmp_path):
    scheduler = CampaignScheduler(
        tmp_path / "data",
        max_running=1,
        max_queued_per_tenant=2,
        max_running_per_tenant=1,
    )
    yield scheduler
    scheduler.close()


def _wait(predicate, timeout=10.0, message="condition never became true"):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(message)


def _wait_terminal(scheduler, job_id, timeout=10.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        _, terminal = scheduler.events_since(job_id, 0, timeout=0.2)
        if terminal:
            return scheduler.get(job_id)
    raise AssertionError(f"job {job_id} never reached a terminal state")


class TestDedupe:
    def test_identical_specs_share_one_execution(self, sched, fake_runs):
        spec = CampaignSpec(scale="smoke", seed=1)
        job_a, scheduled_a = sched.submit(spec, tenant="alice")
        job_b, scheduled_b = sched.submit(
            CampaignSpec(scale="smoke", seed=1), tenant="bob"
        )
        assert scheduled_a is True
        assert scheduled_b is False
        assert job_a is job_b
        fake_runs.release.set()
        job = _wait_terminal(sched, job_a.job_id)
        assert job.state == STATE_DONE
        assert sched.executions == 1
        # joining after completion is also served by the same job
        job_c, scheduled_c = sched.submit(spec, tenant="carol")
        assert job_c is job_a
        assert scheduled_c is False
        assert sched.executions == 1
        assert fake_runs.started == [1]

    def test_execution_knobs_do_not_fork_identity(self, sched, fake_runs):
        fake_runs.release.set()
        job_a, _ = sched.submit(CampaignSpec(scale="smoke", seed=2))
        job_b, scheduled = sched.submit(
            CampaignSpec(
                scale="smoke", seed=2, jobs=4, unit_timeout=30.0, priority=9
            )
        )
        assert job_a is job_b
        assert scheduled is False

    def test_different_identities_run_separately(self, sched, fake_runs):
        fake_runs.release.set()
        job_a, _ = sched.submit(CampaignSpec(scale="smoke", seed=3))
        job_b, _ = sched.submit(CampaignSpec(scale="smoke", seed=4))
        assert job_a.job_id != job_b.job_id
        _wait_terminal(sched, job_a.job_id)
        _wait_terminal(sched, job_b.job_id)
        assert sched.executions == 2


class TestQuotas:
    def test_queued_quota_answers_429(self, sched, fake_runs):
        first, _ = sched.submit(CampaignSpec(scale="smoke", seed=10), "alice")
        _wait(
            lambda: sched.get(first.job_id).state == STATE_RUNNING,
            message="first job never started",
        )
        sched.submit(CampaignSpec(scale="smoke", seed=11), "alice")
        sched.submit(CampaignSpec(scale="smoke", seed=12), "alice")
        with pytest.raises(ApiError) as excinfo:
            sched.submit(CampaignSpec(scale="smoke", seed=13), "alice")
        assert excinfo.value.status == 429
        # another tenant is unaffected by alice's full queue
        other, scheduled = sched.submit(
            CampaignSpec(scale="smoke", seed=13), "bob"
        )
        assert scheduled is True
        fake_runs.release.set()
        _wait_terminal(sched, other.job_id)

    def test_running_quota_defers_not_rejects(self, tmp_path, fake_runs):
        # Two executor slots, but one tenant may only occupy one of them:
        # their second job must wait even while a slot sits idle, and a
        # different tenant's job overtakes it.
        scheduler = CampaignScheduler(
            tmp_path / "data",
            max_running=2,
            max_queued_per_tenant=8,
            max_running_per_tenant=1,
        )
        try:
            first, _ = scheduler.submit(
                CampaignSpec(scale="smoke", seed=20), "alice"
            )
            second, _ = scheduler.submit(
                CampaignSpec(scale="smoke", seed=21), "alice"
            )
            other, _ = scheduler.submit(
                CampaignSpec(scale="smoke", seed=22), "bob"
            )
            _wait(lambda: 20 in fake_runs.started and 22 in fake_runs.started)
            assert 21 not in fake_runs.started
            assert scheduler.get(second.job_id).state == STATE_QUEUED
            fake_runs.release.set()
            _wait_terminal(scheduler, second.job_id)
            assert sorted(fake_runs.started) == [20, 21, 22]
        finally:
            scheduler.close()


class TestPriority:
    def test_higher_priority_overtakes_fifo(self, sched, fake_runs):
        blocker, _ = sched.submit(CampaignSpec(scale="smoke", seed=30), "a")
        _wait(lambda: 30 in fake_runs.started)
        low, _ = sched.submit(
            CampaignSpec(scale="smoke", seed=31, priority=0), "b"
        )
        high, _ = sched.submit(
            CampaignSpec(scale="smoke", seed=32, priority=5), "c"
        )
        fake_runs.release.set()
        _wait_terminal(sched, low.job_id)
        _wait_terminal(sched, high.job_id)
        assert fake_runs.started == [30, 32, 31]


class TestCancel:
    def test_cancel_queued_job_never_runs(self, sched, fake_runs):
        blocker, _ = sched.submit(CampaignSpec(scale="smoke", seed=40))
        _wait(lambda: 40 in fake_runs.started)
        queued, _ = sched.submit(CampaignSpec(scale="smoke", seed=41))
        cancelled = sched.cancel(queued.job_id)
        assert cancelled.state == STATE_CANCELLED
        fake_runs.release.set()
        _wait_terminal(sched, blocker.job_id)
        assert 41 not in fake_runs.started
        assert sched.executions == 1

    def test_cancel_running_then_resubmit_requeues(self, sched, fake_runs):
        spec = CampaignSpec(scale="smoke", seed=42)
        job, _ = sched.submit(spec)
        _wait(lambda: 42 in fake_runs.started)
        sched.cancel(job.job_id)
        job = _wait_terminal(sched, job.job_id)
        assert job.state == STATE_CANCELLED
        # resubmission schedules a new run of the same job object
        rejob, scheduled = sched.submit(CampaignSpec(scale="smoke", seed=42))
        assert rejob is job
        assert scheduled is True
        fake_runs.release.set()
        job = _wait_terminal(sched, job.job_id)
        assert job.state == STATE_DONE
        assert job.runs == 2
        queued_events = [
            e for e in job.events if e["event"] == "job_queued"
        ]
        assert [e["resumed"] for e in queued_events] == [False, True]

    def test_failed_job_resubmit_requeues(self, sched, fake_runs):
        fake_runs.fail_seeds.add(43)
        fake_runs.release.set()
        job, _ = sched.submit(CampaignSpec(scale="smoke", seed=43))
        job = _wait_terminal(sched, job.job_id)
        assert job.state == STATE_FAILED
        assert "synthetic failure" in job.error
        fake_runs.fail_seeds.clear()
        _, scheduled = sched.submit(CampaignSpec(scale="smoke", seed=43))
        assert scheduled is True
        job = _wait_terminal(sched, job.job_id)
        assert job.state == STATE_DONE
        assert job.error is None


class TestArtifactsAndEvents:
    def test_artifacts_served_when_done(self, sched, fake_runs):
        fake_runs.release.set()
        job, _ = sched.submit(CampaignSpec(scale="smoke", seed=50))
        _wait_terminal(sched, job.job_id)
        path = sched.artifact_path(job.job_id, "campaign.json")
        assert path.read_text(encoding="utf-8") == "campaign.json for seed 50\n"

    def test_artifact_guards(self, sched, fake_runs):
        job, _ = sched.submit(CampaignSpec(scale="smoke", seed=51))
        with pytest.raises(ApiError) as excinfo:
            sched.artifact_path(job.job_id, "campaign.json")
        assert excinfo.value.status == 409  # not done yet
        with pytest.raises(ApiError) as excinfo:
            sched.artifact_path(job.job_id, "../../etc/passwd")
        assert excinfo.value.status == 404  # whitelist, not paths
        with pytest.raises(ApiError) as excinfo:
            sched.get("no-such-job")
        assert excinfo.value.status == 404
        fake_runs.release.set()
        _wait_terminal(sched, job.job_id)

    def test_event_log_is_ordered_and_terminal(self, sched, fake_runs):
        fake_runs.release.set()
        job, _ = sched.submit(CampaignSpec(scale="smoke", seed=52))
        _wait_terminal(sched, job.job_id)
        events, terminal = sched.events_since(job.job_id, 0, timeout=0.1)
        assert terminal is True
        assert [e["seq"] for e in events] == list(range(len(events)))
        kinds = [e["event"] for e in events]
        assert kinds[0] == "job_queued"
        assert kinds[-1] == "job_done"
        # the cursor protocol: replay from an offset yields the tail
        tail, _ = sched.events_since(job.job_id, len(events) - 1, timeout=0.1)
        assert tail == events[-1:]


class TestRestore:
    def test_done_job_adopted_across_restart(self, tmp_path, fake_runs):
        fake_runs.release.set()
        spec = CampaignSpec(scale="smoke", seed=60)
        with CampaignScheduler(tmp_path / "data") as first:
            job, _ = first.submit(spec)
            _wait_terminal(first, job.job_id)
            assert job.state == STATE_DONE
        with CampaignScheduler(tmp_path / "data") as second:
            restored, scheduled = second.submit(
                CampaignSpec(scale="smoke", seed=60)
            )
            assert scheduled is False
            assert restored.state == STATE_DONE
            assert second.executions == 0
            path = second.artifact_path(restored.job_id, "summary.txt")
            assert "seed 60" in path.read_text(encoding="utf-8")

    def test_unfinished_job_not_adopted(self, tmp_path, fake_runs):
        # Only a job.json written at DONE makes a dir adoptable; a bare
        # artifact directory (crash mid-run) is re-executed.
        spec = CampaignSpec(scale="smoke", seed=61)
        with CampaignScheduler(tmp_path / "data") as first:
            job_id = first.submit(spec)[0].job_id
            first.job_dir(job_id).mkdir(parents=True, exist_ok=True)
        fake_runs.release.set()
        with CampaignScheduler(tmp_path / "data") as second:
            job, scheduled = second.submit(CampaignSpec(scale="smoke", seed=61))
            assert scheduled is True
            _wait_terminal(second, job.job_id)
            assert second.executions == 1


class TestLifecycle:
    def test_submit_after_close_rejected(self, tmp_path, fake_runs):
        scheduler = CampaignScheduler(tmp_path / "data")
        scheduler.close()
        with pytest.raises(ApiError) as excinfo:
            scheduler.submit(CampaignSpec(scale="smoke", seed=70))
        assert excinfo.value.status == 503

    def test_close_cancels_running_jobs(self, tmp_path, fake_runs):
        scheduler = CampaignScheduler(tmp_path / "data")
        job, _ = scheduler.submit(CampaignSpec(scale="smoke", seed=71))
        _wait(lambda: 71 in fake_runs.started)
        scheduler.close()  # cancel_running=True by default
        assert scheduler.get(job.job_id).state == STATE_CANCELLED
