"""Tests for the opt-in cProfile hooks."""

from repro.obs.profiler import format_top_entries, maybe_profile, top_entries


def busy_function():
    return sum(i * i for i in range(2000))


class TestMaybeProfile:
    def test_disabled_yields_none(self):
        with maybe_profile(enabled=False) as profiler:
            busy_function()
        assert profiler is None

    def test_enabled_yields_profiler(self):
        with maybe_profile() as profiler:
            busy_function()
        assert profiler is not None
        rows = top_entries(profiler, limit=10)
        assert 0 < len(rows) <= 10

    def test_profiler_disabled_after_exit_on_error(self):
        try:
            with maybe_profile() as profiler:
                raise ValueError("boom")
        except ValueError:
            pass
        # Must be usable afterwards: the profiler was cleanly disabled.
        assert isinstance(top_entries(profiler, limit=5), list)


class TestTopEntries:
    def test_rows_have_expected_fields(self):
        with maybe_profile() as profiler:
            busy_function()
        rows = top_entries(profiler, limit=3)
        for row in rows:
            assert set(row) == {"ncalls", "tottime", "cumtime", "function"}
            assert row["cumtime"] >= row["tottime"] >= 0

    def test_limit_respected(self):
        with maybe_profile() as profiler:
            busy_function()
        assert len(top_entries(profiler, limit=1)) == 1

    def test_sorted_by_cumulative(self):
        with maybe_profile() as profiler:
            busy_function()
        rows = top_entries(profiler, limit=10)
        cumtimes = [row["cumtime"] for row in rows]
        assert cumtimes == sorted(cumtimes, reverse=True)

    def test_format_is_tabular(self):
        with maybe_profile() as profiler:
            busy_function()
        text = format_top_entries(top_entries(profiler, limit=3))
        lines = text.splitlines()
        assert "ncalls" in lines[0] and "cumtime" in lines[0]
        assert len(lines) == 4
