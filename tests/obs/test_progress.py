"""Tests for the live progress line."""

import io
import threading

from repro.obs.progress import ProgressLine, format_eta


class TestFormatEta:
    def test_bands(self):
        assert format_eta(42) == "42s"
        assert format_eta(190) == "3m10s"
        assert format_eta(7500) == "2h05m"
        assert format_eta(-3) == "0s"


class TestProgressLine:
    def test_advance_and_render(self):
        line = ProgressLine(4, label="units", enabled=False)
        text = line.advance()
        assert text.startswith("units: 1/4 (25%)")
        line.advance(2)
        assert line.done == 3
        assert "3/4 (75%)" in line.render()

    def test_extra_suffix(self):
        line = ProgressLine(2, enabled=False)
        assert "5 cache hit(s)" in line.advance(extra="5 cache hit(s)")

    def test_never_exceeds_total(self):
        line = ProgressLine(2, enabled=False)
        line.advance(10)
        assert line.done == 2
        assert "(100%)" in line.render()

    def test_eta_appears_after_first_unit(self):
        line = ProgressLine(10, enabled=False)
        assert line.eta_seconds() is None
        line.advance()
        assert line.eta_seconds() is not None
        assert "ETA" in line.render()

    def test_resumed_work_excluded_from_eta(self):
        # A resumed campaign starts with done > 0; those units carry no
        # rate information, so ETA must wait for fresh completions.
        line = ProgressLine(10, done=5, enabled=False)
        assert line.done == 5
        assert line.eta_seconds() is None
        line.advance()
        assert line.eta_seconds() is not None

    def test_non_tty_stream_disables_rendering(self):
        stream = io.StringIO()  # isatty() -> False
        line = ProgressLine(2, stream=stream)
        assert not line.enabled
        line.advance()
        line.finish()
        assert stream.getvalue() == ""

    def test_enabled_writes_in_place(self):
        stream = io.StringIO()
        line = ProgressLine(2, stream=stream, enabled=True, label="x")
        line.advance()
        line.finish()
        output = stream.getvalue()
        assert output.startswith("\r\x1b[2K")
        assert "x: 1/2" in output
        assert output.endswith("\n")

    def test_finish_is_idempotent(self):
        # run_campaign's interrupt handler and its ``finally`` block can
        # both reach finish(); only the first may write the newline, or
        # every Ctrl-C leaves a stray blank line on the terminal.
        stream = io.StringIO()
        line = ProgressLine(2, stream=stream, enabled=True, label="x")
        line.advance()
        line.finish()
        line.finish()
        line.finish()
        assert stream.getvalue().count("\n") == 1

    def test_finish_before_any_render_is_silent_once(self):
        stream = io.StringIO()
        line = ProgressLine(2, stream=stream, enabled=True)
        line.finish()
        line.finish()
        assert stream.getvalue() == "\n"

    def test_thread_safe_advance(self):
        line = ProgressLine(400, enabled=False)

        def worker():
            for _ in range(100):
                line.advance()

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert line.done == 400
