"""Tests for the JSONL run-log writer/reader."""

import pytest

from repro.errors import SerializationError
from repro.obs.runlog import (
    SCHEMA_VERSION,
    TELEMETRY_FILENAME,
    find_telemetry_file,
    read_jsonl,
    summarize_records,
    telemetry_records,
    write_telemetry_jsonl,
)
from repro.obs.telemetry import Telemetry


def populated_hub():
    t = Telemetry(meta={"experiment": "fig04", "seed": 3})
    t.inc("network.deliveries", 10)
    t.inc("mrai.sends", 10)
    t.set_gauge("campaign.wall_clock_seconds", 1.25)
    t.record_phase("warmup", 0.5, events=100)
    t.record_phase("measured", 1.5, events=400)
    t.on_engine_run(500, 2.0)
    return t


class TestRecords:
    def test_meta_first_summary_last(self):
        records = telemetry_records(populated_hub())
        assert records[0]["kind"] == "meta"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[0]["experiment"] == "fig04"
        assert "code_version" in records[0]
        assert records[-1]["kind"] == "summary"
        assert records[-1]["engine_events"] == 500

    def test_extra_meta_merged(self):
        records = telemetry_records(populated_hub(), {"run_id": "abc"})
        assert records[0]["run_id"] == "abc"

    def test_one_record_per_instrument(self):
        records = telemetry_records(populated_hub())
        kinds = [r["kind"] for r in records]
        assert kinds.count("phase") == 2
        assert kinds.count("counter") == 2
        assert kinds.count("gauge") == 1


class TestRoundtrip:
    def test_write_read_summarize(self, tmp_path):
        hub = populated_hub()
        path = write_telemetry_jsonl(hub, tmp_path / "run" / TELEMETRY_FILENAME)
        assert path.exists()
        snapshot = summarize_records(read_jsonl(path))
        original = hub.snapshot()
        assert snapshot["counters"] == original["counters"]
        assert snapshot["gauges"] == original["gauges"]
        assert snapshot["phases"] == original["phases"]
        assert snapshot["summary"]["engine_events"] == 500
        assert snapshot["meta"]["experiment"] == "fig04"

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "meta"}\nnot json\n', encoding="utf-8")
        with pytest.raises(SerializationError, match="bad.jsonl:2"):
            read_jsonl(path)

    def test_non_object_record_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n", encoding="utf-8")
        with pytest.raises(SerializationError):
            read_jsonl(path)

    def test_blank_lines_ignored(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_text('{"kind": "meta"}\n\n{"kind": "summary"}\n', encoding="utf-8")
        assert len(read_jsonl(path)) == 2

    def test_unknown_kinds_skipped(self):
        snapshot = summarize_records(
            [{"kind": "meta"}, {"kind": "frobnicate", "x": 1}, {"kind": "summary"}]
        )
        assert snapshot["counters"] == {}


class TestFindTelemetryFile:
    def test_resolves_run_directory(self, tmp_path):
        target = tmp_path / TELEMETRY_FILENAME
        target.write_text("", encoding="utf-8")
        assert find_telemetry_file(tmp_path) == target

    def test_direct_file_passthrough(self, tmp_path):
        target = tmp_path / "custom.jsonl"
        target.write_text("", encoding="utf-8")
        assert find_telemetry_file(target) == target

    def test_missing_raises(self, tmp_path):
        with pytest.raises(SerializationError):
            find_telemetry_file(tmp_path)
        with pytest.raises(SerializationError):
            find_telemetry_file(tmp_path / "nope.jsonl")
