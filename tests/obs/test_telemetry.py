"""Tests for the telemetry hub, its null object and the ambient session."""

import pytest

from repro.bgp.config import BGPConfig
from repro.obs.telemetry import (
    NULL_TELEMETRY,
    NullTelemetry,
    Telemetry,
    current_telemetry,
    telemetry_session,
)
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.topology.types import Relationship


class TestCountersAndGauges:
    def test_inc_creates_and_accumulates(self):
        t = Telemetry()
        t.inc("a")
        t.inc("a", 4)
        t.inc("b")
        assert t.counters == {"a": 5, "b": 1}

    def test_gauge_last_write_wins(self):
        t = Telemetry()
        t.set_gauge("x", 1.0)
        t.set_gauge("x", 2.5)
        assert t.gauges == {"x": 2.5}

    def test_update_hook_splits_by_relationship_and_kind(self):
        t = Telemetry()
        t.on_update(Relationship.CUSTOMER, False)
        t.on_update(Relationship.CUSTOMER, True)
        t.on_update(Relationship.PEER, False)
        assert t.counters["node.updates"] == 3
        assert t.counters["node.updates.from_customer"] == 2
        assert t.counters["node.updates.from_peer"] == 1
        assert t.counters["node.updates.withdrawals"] == 1
        assert t.counters["node.updates.announcements"] == 2


class TestPhases:
    def test_phase_accumulates_time_and_events(self):
        t = Telemetry()
        engine = Engine()
        engine.schedule(0.0, lambda: None)
        with t.phase("warmup", engine):
            engine.run()
        engine.schedule(0.0, lambda: None)
        engine.schedule(0.0, lambda: None)
        with t.phase("warmup", engine):
            engine.run()
        assert t.phase_events["warmup"] == 3
        assert t.phase_seconds["warmup"] > 0
        rows = t.phases()
        assert rows[0]["name"] == "warmup"
        assert rows[0]["events"] == 3

    def test_phase_without_engine_counts_zero_events(self):
        t = Telemetry()
        with t.phase("analysis"):
            pass
        assert t.phase_events["analysis"] == 0


class TestEngineInstrumentation:
    def test_run_reports_events_and_seconds(self):
        t = Telemetry()
        engine = Engine()
        engine.telemetry = t
        for _ in range(5):
            engine.schedule(0.0, lambda: None)
        engine.run()
        assert t.engine_events == 5
        assert t.engine_seconds > 0
        assert t.events_per_sec > 0

    def test_null_engine_runs_uninstrumented(self):
        engine = Engine()
        assert engine.telemetry is NULL_TELEMETRY
        engine.schedule(0.0, lambda: None)
        engine.run()  # must not raise nor record anywhere
        assert engine.executed_events == 1


class TestNullObject:
    def test_null_hooks_are_noops(self):
        n = NullTelemetry()
        n.inc("x")
        n.set_gauge("x", 1.0)
        n.on_engine_run(1, 0.1)
        n.on_delivery(True)
        n.on_drop()
        n.on_update(Relationship.PEER, False)
        n.on_decision()
        n.on_mrai_send(False)
        n.on_mrai_invalidation()
        n.on_mrai_wakeup()
        with n.phase("anything"):
            pass
        assert n.enabled is False

    def test_null_mirrors_full_hook_api(self):
        # Every public hook of Telemetry must exist on NullTelemetry with
        # the same arity, or a disabled component would crash at runtime.
        hooks = [
            name
            for name in dir(Telemetry)
            if not name.startswith("_")
            and callable(getattr(Telemetry, name))
            and (name.startswith("on_") or name in ("inc", "set_gauge", "phase"))
        ]
        assert hooks  # the probe itself must find something
        for name in hooks:
            assert callable(getattr(NullTelemetry, name, None)), name


class TestAmbientSession:
    def test_default_is_null(self):
        assert current_telemetry() is NULL_TELEMETRY

    def test_session_installs_and_restores(self):
        with telemetry_session() as hub:
            assert current_telemetry() is hub
            inner = Telemetry()
            with telemetry_session(inner):
                assert current_telemetry() is inner
            assert current_telemetry() is hub
        assert current_telemetry() is NULL_TELEMETRY

    def test_session_restored_on_error(self):
        with pytest.raises(RuntimeError):
            with telemetry_session():
                raise RuntimeError("boom")
        assert current_telemetry() is NULL_TELEMETRY

    def test_network_adopts_ambient_hub(self, diamond, fast_config):
        with telemetry_session() as hub:
            network = SimNetwork(diamond, fast_config, seed=1)
        assert network.telemetry is hub
        assert network.engine.telemetry is hub

    def test_explicit_hub_overrides_ambient(self, diamond, fast_config):
        explicit = Telemetry()
        with telemetry_session():
            network = SimNetwork(diamond, fast_config, seed=1, telemetry=explicit)
        assert network.telemetry is explicit


class TestEndToEnd:
    def test_simulation_populates_all_component_counters(self, diamond):
        config = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)
        with telemetry_session() as hub:
            network = SimNetwork(diamond, config, seed=1)
            network.originate(4, 0)
            network.run_to_convergence()
            network.withdraw(4, 0)
            network.run_to_convergence()
        counters = hub.counters
        assert counters["network.deliveries"] > 0
        assert counters["node.updates"] == counters["network.deliveries"]
        assert counters["node.decision_runs"] > 0
        assert counters["mrai.sends"] == counters["network.deliveries"]
        assert counters["mrai.wakeups"] > 0
        assert hub.engine_events > 0

    def test_drop_counter_on_failed_link(self, diamond, fast_config):
        from repro.bgp.messages import announcement

        with telemetry_session() as hub:
            network = SimNetwork(diamond, fast_config, seed=1)
            node = network.node(2)
            node.set_link_down(4)
            node.receive(announcement(4, 2, 0, (4,)))
        assert hub.counters["network.drops"] == 1

    def test_telemetry_does_not_change_results(self, diamond, fast_config):
        # The bit-reproducibility contract: an instrumented run returns
        # exactly the numbers of an uninstrumented one.
        def run(telemetry):
            network = SimNetwork(diamond, fast_config, seed=9, telemetry=telemetry)
            network.originate(4, 0)
            network.run_to_convergence()
            network.withdraw(4, 0)
            network.run_to_convergence()
            return (
                network.delivered_messages,
                network.engine.now,
                network.engine.executed_events,
                {n: node.busy_time for n, node in network.nodes.items()},
            )

        assert run(None) == run(Telemetry())


class TestSnapshot:
    def test_snapshot_shape(self):
        t = Telemetry(meta={"experiment": "fig04"})
        t.inc("a", 2)
        t.set_gauge("g", 1.5)
        with t.phase("warmup"):
            pass
        snap = t.snapshot()
        assert snap["meta"] == {"experiment": "fig04"}
        assert snap["counters"] == {"a": 2}
        assert snap["gauges"] == {"g": 1.5}
        assert [p["name"] for p in snap["phases"]] == ["warmup"]
        assert set(snap["summary"]) == {
            "wall_clock_seconds",
            "engine_events",
            "engine_run_seconds",
            "events_per_sec",
        }
