"""Tests for the bundled long-memory report."""

import numpy as np
import pytest

from repro.analysis import analyze_churn_series, fractional_gaussian_noise
from repro.analysis.report import MEASURED_H_HIGH, MEASURED_H_LOW
from repro.errors import AnalysisError
from repro.obs.telemetry import telemetry_session


class TestAnalyzeChurnSeries:
    def test_persistent_series_lands_in_measured_band(self):
        series = fractional_gaussian_noise(4096, 0.75, seed=3)
        report = analyze_churn_series(series, seed=1, resamples=25)
        assert report.points == 4096
        assert set(report.estimates) == {"dfa1", "dfa2", "aggvar", "rs"}
        assert report.hurst == report.estimates["dfa1"].hurst
        assert MEASURED_H_LOW <= report.hurst <= MEASURED_H_HIGH
        assert report.in_measured_band()
        assert abs(report.consensus_hurst - 0.75) < 0.1
        assert report.dfa1_interval is not None
        assert report.total_windows > 0

    def test_white_noise_outside_band(self):
        rng = np.random.Generator(np.random.PCG64(6))
        report = analyze_churn_series(
            rng.standard_normal(4096), seed=1, resamples=25
        )
        assert not report.in_measured_band()

    def test_deterministic_to_dict(self):
        series = fractional_gaussian_noise(1024, 0.7, seed=4)
        a = analyze_churn_series(series, seed=2, resamples=25)
        b = analyze_churn_series(series, seed=2, resamples=25)
        assert a.to_dict() == b.to_dict()

    def test_interval_skippable(self):
        series = fractional_gaussian_noise(1024, 0.7, seed=4)
        report = analyze_churn_series(series, with_interval=False)
        assert report.dfa1_interval is None
        assert report.to_dict()["dfa1_interval"] is None

    def test_degenerate_series_propagates(self):
        with pytest.raises(AnalysisError, match="constant"):
            analyze_churn_series(np.full(256, 1.0))

    def test_telemetry_counters(self):
        series = fractional_gaussian_noise(1024, 0.7, seed=4)
        with telemetry_session() as telemetry:
            report = analyze_churn_series(series, resamples=25)
        counters = telemetry.snapshot()["counters"]
        assert counters["analysis.points"] == 1024
        assert counters["analysis.series"] == 1
        assert counters["analysis.dfa_windows"] == (
            report.estimates["dfa1"].windows + report.estimates["dfa2"].windows
        )
