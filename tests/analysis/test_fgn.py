"""Tests for the fractional Gaussian noise generator."""

import numpy as np
import pytest

from repro.analysis import fractional_gaussian_noise, longmem_noise_source
from repro.errors import ParameterError


class TestFractionalGaussianNoise:
    def test_deterministic_given_seed(self):
        a = fractional_gaussian_noise(512, 0.8, seed=3)
        b = fractional_gaussian_noise(512, 0.8, seed=3)
        assert np.array_equal(a, b)

    def test_different_seeds_differ(self):
        a = fractional_gaussian_noise(512, 0.8, seed=3)
        b = fractional_gaussian_noise(512, 0.8, seed=4)
        assert not np.array_equal(a, b)

    def test_unit_variance(self):
        x = fractional_gaussian_noise(65536, 0.7, seed=0)
        assert abs(float(x.var()) - 1.0) < 0.1

    def test_white_noise_is_uncorrelated(self):
        x = fractional_gaussian_noise(65536, 0.5, seed=1)
        lag1 = float(np.corrcoef(x[:-1], x[1:])[0, 1])
        assert abs(lag1) < 0.02

    def test_persistent_noise_matches_theory(self):
        # Theoretical lag-1 autocorrelation of fGn: 2^(2H-1) - 1.
        hurst = 0.8
        x = fractional_gaussian_noise(65536, hurst, seed=2)
        lag1 = float(np.corrcoef(x[:-1], x[1:])[0, 1])
        assert abs(lag1 - (2 ** (2 * hurst - 1) - 1)) < 0.05

    @pytest.mark.parametrize("hurst", [0.0, 1.0, -0.2, 1.5])
    def test_hurst_out_of_range(self, hurst):
        with pytest.raises(ParameterError, match="hurst"):
            fractional_gaussian_noise(128, hurst)

    def test_n_out_of_range(self):
        with pytest.raises(ParameterError, match="n >= 1"):
            fractional_gaussian_noise(0, 0.5)


class TestLongmemNoiseSource:
    def test_multipliers_are_lognormal_and_seeded(self):
        source = longmem_noise_source(hurst=0.75, days=64, sigma=0.3, seed=9)
        again = longmem_noise_source(hurst=0.75, days=64, sigma=0.3, seed=9)
        values = [source(day, None) for day in range(64)]
        assert values == [again(day, None) for day in range(64)]
        assert all(v > 0.0 for v in values)

    def test_wraps_past_days(self):
        source = longmem_noise_source(hurst=0.75, days=16, sigma=0.3, seed=0)
        assert source(17, None) == source(1, None)

    def test_parameter_validation(self):
        with pytest.raises(ParameterError, match="days"):
            longmem_noise_source(hurst=0.75, days=0, sigma=0.3)
        with pytest.raises(ParameterError, match="sigma"):
            longmem_noise_source(hurst=0.75, days=8, sigma=-0.1)
