"""Property tests for the Hurst estimators on series with known H."""

import numpy as np
import pytest

from repro.analysis import (
    aggregated_variance_hurst,
    dfa,
    fractional_gaussian_noise,
    rs_hurst,
)
from repro.errors import AnalysisError, ParameterError

#: long synthetic series give every estimator room for a clean fit
N = 8192

#: documented recovery tolerance on synthetic fGn of length N
TOLERANCE = 0.1

ESTIMATORS = [
    pytest.param(lambda s: dfa(s, order=1), id="dfa1"),
    pytest.param(lambda s: dfa(s, order=2), id="dfa2"),
    pytest.param(aggregated_variance_hurst, id="aggvar"),
    pytest.param(rs_hurst, id="rs"),
]


class TestKnownHurstRecovery:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_white_noise_is_memoryless(self, estimator):
        rng = np.random.Generator(np.random.PCG64(17))
        estimate = estimator(rng.standard_normal(N))
        assert abs(estimate.hurst - 0.5) < TOLERANCE

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    @pytest.mark.parametrize("hurst", [0.7, 0.9])
    def test_fgn_recovery(self, estimator, hurst):
        series = fractional_gaussian_noise(N, hurst, seed=42)
        estimate = estimator(series)
        assert abs(estimate.hurst - hurst) < TOLERANCE

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_deterministic(self, estimator):
        series = fractional_gaussian_noise(1024, 0.6, seed=5)
        assert estimator(series) == estimator(series)

    def test_estimate_shape(self):
        estimate = dfa(fractional_gaussian_noise(1024, 0.6, seed=5))
        assert estimate.method == "dfa1"
        assert len(estimate.scales) == len(estimate.statistics) >= 4
        assert estimate.windows > 0
        assert isinstance(estimate.windows, int)
        payload = estimate.to_dict()
        assert payload["method"] == "dfa1"
        assert payload["windows"] == estimate.windows


class TestDegenerateInput:
    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_short_series_raises(self, estimator):
        with pytest.raises(AnalysisError, match="too short"):
            estimator(np.arange(32, dtype=float))

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_constant_series_raises(self, estimator):
        with pytest.raises(AnalysisError, match="constant"):
            estimator(np.full(256, 3.0))

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_nan_raises(self, estimator):
        series = np.ones(256)
        series[0] = 2.0
        series[10] = np.nan
        with pytest.raises(AnalysisError, match="non-finite"):
            estimator(series)

    @pytest.mark.parametrize("estimator", ESTIMATORS)
    def test_two_dimensional_raises(self, estimator):
        with pytest.raises(AnalysisError, match="1-D"):
            estimator(np.ones((16, 16)))

    def test_bad_dfa_order(self):
        with pytest.raises(ParameterError, match="order"):
            dfa(np.ones(256), order=3)
