"""Tests for the seeded circular block bootstrap."""

import numpy as np
import pytest

from repro.analysis import dfa, fractional_gaussian_noise, hurst_confidence_interval
from repro.errors import AnalysisError, ParameterError


def _dfa1(series):
    return dfa(series, order=1)


class TestHurstConfidenceInterval:
    def test_interval_brackets_point_estimate(self):
        series = fractional_gaussian_noise(2048, 0.7, seed=1)
        interval = hurst_confidence_interval(
            series, _dfa1, resamples=50, seed=0
        )
        assert interval.mean == _dfa1(series).hurst
        assert interval.low <= interval.high
        assert interval.confidence == 0.95
        # The resampled spread should contain the true H at this length.
        assert interval.low < 0.7 < interval.high + 0.15

    def test_deterministic_given_seed(self):
        series = fractional_gaussian_noise(1024, 0.6, seed=2)
        a = hurst_confidence_interval(series, _dfa1, resamples=25, seed=7)
        b = hurst_confidence_interval(series, _dfa1, resamples=25, seed=7)
        assert (a.low, a.mean, a.high) == (b.low, b.mean, b.high)

    def test_seed_changes_interval(self):
        series = fractional_gaussian_noise(1024, 0.6, seed=2)
        a = hurst_confidence_interval(series, _dfa1, resamples=25, seed=7)
        b = hurst_confidence_interval(series, _dfa1, resamples=25, seed=8)
        assert (a.low, a.high) != (b.low, b.high)

    def test_explicit_block_length(self):
        series = fractional_gaussian_noise(1024, 0.6, seed=2)
        interval = hurst_confidence_interval(
            series, _dfa1, resamples=25, block_length=64, seed=0
        )
        assert interval.low <= interval.mean <= interval.high + 0.2

    def test_short_series_raises(self):
        with pytest.raises(AnalysisError, match="too short"):
            hurst_confidence_interval(np.ones(32), _dfa1)

    def test_parameter_validation(self):
        series = fractional_gaussian_noise(256, 0.6, seed=0)
        with pytest.raises(ParameterError, match="confidence"):
            hurst_confidence_interval(series, _dfa1, confidence=1.5)
        with pytest.raises(ParameterError, match="resamples"):
            hurst_confidence_interval(series, _dfa1, resamples=3)
        with pytest.raises(ParameterError, match="block_length"):
            hurst_confidence_interval(series, _dfa1, block_length=0)
