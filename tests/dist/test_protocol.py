"""Wire-protocol tests: frame fuzzing and codec exactness.

The frame decoder's contract is "valid message, clean EOF, or
ProtocolError — never a hang": every fuzz case here closes the writing
end, so a decoder that waited for more bytes than the peer sent would
deadlock the test instead of passing it.
"""

import json
import socket
import struct

import pytest

from repro.bgp.config import BGPConfig
from repro.core.sweep import SweepUnit, execute_sweep_unit
from repro.dist.protocol import (
    MAX_FRAME_BYTES,
    MSG_LEASE,
    PROTOCOL_VERSION,
    FrameStream,
    batch_result_from_wire,
    batch_result_to_wire,
    decode_frame_payload,
    encode_frame,
    unit_from_wire,
    unit_to_wire,
)
from repro.errors import ProtocolError

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def _unit(**overrides):
    fields = dict(
        scenario="baseline",
        n=60,
        num_origins=2,
        batch_index=0,
        num_batches=1,
        seed=9,
        config=FAST,
        scenario_kwargs=(),
    )
    fields.update(overrides)
    return SweepUnit(**fields)


@pytest.fixture()
def pipe():
    """(reader FrameStream, writer socket) over a local socketpair."""
    left, right = socket.socketpair()
    left.settimeout(5.0)  # belt and braces: a hung read fails, not blocks
    stream = FrameStream(left)
    yield stream, right
    right.close()
    stream.close()


class TestFrameCodec:
    def test_roundtrip(self, pipe):
        stream, writer = pipe
        writer.sendall(encode_frame({"type": MSG_LEASE, "payload": [1, 2.5, None]}))
        message = stream.recv()
        assert message == {
            "type": MSG_LEASE,
            "payload": [1, 2.5, None],
            "v": PROTOCOL_VERSION,
        }

    def test_clean_eof_is_none(self, pipe):
        stream, writer = pipe
        writer.close()
        assert stream.recv() is None

    def test_encode_rejects_unknown_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            encode_frame({"type": "teleport"})

    def test_encode_rejects_missing_type(self):
        with pytest.raises(ProtocolError, match="unknown message type"):
            encode_frame({"payload": 1})

    def test_encode_rejects_unserializable(self):
        with pytest.raises(ProtocolError, match="not JSON-serializable"):
            encode_frame({"type": MSG_LEASE, "payload": object()})

    def test_encode_rejects_nan(self):
        with pytest.raises(ProtocolError, match="not JSON-serializable"):
            encode_frame({"type": MSG_LEASE, "payload": float("nan")})

    def test_encode_rejects_oversized(self, monkeypatch):
        monkeypatch.setattr("repro.dist.protocol.MAX_FRAME_BYTES", 64)
        with pytest.raises(ProtocolError, match="exceeds"):
            encode_frame({"type": MSG_LEASE, "payload": "x" * 100})


class TestFrameFuzz:
    """Malformed byte streams must fail cleanly, never hang."""

    def test_truncated_length_prefix(self, pipe):
        stream, writer = pipe
        writer.sendall(b"\x00\x00")  # 2 of 4 prefix bytes
        writer.close()
        with pytest.raises(ProtocolError, match="truncated"):
            stream.recv()

    def test_truncated_body(self, pipe):
        stream, writer = pipe
        writer.sendall(struct.pack("!I", 100) + b'{"v":1')  # promises 100 bytes
        writer.close()
        with pytest.raises(ProtocolError, match="truncated"):
            stream.recv()

    def test_zero_length_frame(self, pipe):
        stream, writer = pipe
        writer.sendall(struct.pack("!I", 0))
        with pytest.raises(ProtocolError, match="zero-length"):
            stream.recv()

    def test_oversized_declared_length(self, pipe):
        # Rejected from the prefix alone: no body bytes are ever sent, so
        # a decoder that tried to read them would hang here.
        stream, writer = pipe
        writer.sendall(struct.pack("!I", MAX_FRAME_BYTES + 1))
        with pytest.raises(ProtocolError, match="exceeds"):
            stream.recv()

    def test_garbage_body(self, pipe):
        stream, writer = pipe
        blob = b"\xde\xad\xbe\xef not json"
        writer.sendall(struct.pack("!I", len(blob)) + blob)
        with pytest.raises(ProtocolError, match="not valid JSON"):
            stream.recv()

    def test_non_object_payload(self, pipe):
        stream, writer = pipe
        blob = b"[1,2,3]"
        writer.sendall(struct.pack("!I", len(blob)) + blob)
        with pytest.raises(ProtocolError, match="JSON object"):
            stream.recv()

    def test_wrong_protocol_version(self, pipe):
        stream, writer = pipe
        blob = json.dumps({"v": PROTOCOL_VERSION + 1, "type": MSG_LEASE}).encode()
        writer.sendall(struct.pack("!I", len(blob)) + blob)
        with pytest.raises(ProtocolError, match="version mismatch"):
            stream.recv()

    def test_missing_version(self, pipe):
        stream, writer = pipe
        blob = json.dumps({"type": MSG_LEASE}).encode()
        writer.sendall(struct.pack("!I", len(blob)) + blob)
        with pytest.raises(ProtocolError, match="version mismatch"):
            stream.recv()

    def test_unknown_type(self, pipe):
        stream, writer = pipe
        blob = json.dumps({"v": PROTOCOL_VERSION, "type": "teleport"}).encode()
        writer.sendall(struct.pack("!I", len(blob)) + blob)
        with pytest.raises(ProtocolError, match="unknown message type"):
            stream.recv()

    def test_decode_payload_direct(self):
        with pytest.raises(ProtocolError):
            decode_frame_payload(b"\xff\xfe")
        with pytest.raises(ProtocolError):
            decode_frame_payload(b'"just a string"')


class TestUnitCodec:
    def test_roundtrip_is_exact(self):
        unit = _unit(
            scenario_kwargs=(("alpha", 0.1), ("flag", True), ("name", "x")),
            config=BGPConfig(mrai=30.0, link_delay=0.0125),
        )
        wire = json.loads(json.dumps(unit_to_wire(unit)))
        assert unit_from_wire(wire) == unit

    def test_non_json_kwarg_rejected(self):
        unit = _unit(scenario_kwargs=(("bad", object()),))
        with pytest.raises(ProtocolError, match="non-JSON"):
            unit_to_wire(unit)

    def test_malformed_wire_unit_rejected(self):
        with pytest.raises(ProtocolError, match="malformed sweep unit"):
            unit_from_wire({"scenario": "baseline"})


class TestBatchResultCodec:
    def test_roundtrip_is_exact(self):
        result = execute_sweep_unit(_unit())
        wire = json.loads(json.dumps(batch_result_to_wire(result)))
        back = batch_result_from_wire(wire)
        assert back.summary == result.summary
        assert back.config == result.config
        assert back.seed == result.seed
        assert back.origins == result.origins
        assert back.raw == result.raw
        assert back.down_totals == result.down_totals
        assert back.up_totals == result.up_totals
        assert back.down_convergence == result.down_convergence
        assert back.up_convergence == result.up_convergence
        assert back.measured_messages == result.measured_messages
        assert back.wall_clock_seconds == result.wall_clock_seconds

    def test_malformed_wire_result_rejected(self):
        with pytest.raises(ProtocolError, match="malformed batch result"):
            batch_result_from_wire({"seed": 1})
