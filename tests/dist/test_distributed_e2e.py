"""End-to-end distributed sweeps: determinism and crash recovery.

The acceptance bar: a sweep distributed over real workers returns every
measured number bit-identical to the serial run — including after a
worker process is killed mid-unit and its lease is re-issued.
"""

import os
import subprocess
import sys
import threading
from pathlib import Path

import pytest

from repro.bgp.config import BGPConfig
from repro.core.sweep import FAULT_INJECT_ENV, run_growth_sweep
from repro.dist.coordinator import Coordinator
from repro.dist.worker import run_worker
from repro.errors import DistributedError

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)
SWEEP_KW = dict(sizes=[60, 80], config=FAST, num_origins=4, seed=9)

_SRC = str(Path(__file__).resolve().parents[2] / "src")


def _series(result):
    """Every measured number of a sweep (wall clock excluded)."""
    return [
        (
            stats.n,
            stats.origins,
            stats.down_updates_per_type,
            stats.up_updates_per_type,
            stats.mean_down_convergence,
            stats.mean_up_convergence,
            stats.measured_messages,
            {t: f.u_by_rel for t, f in stats.per_type.items()},
        )
        for stats in result.stats
    ]


@pytest.fixture(scope="module")
def serial_sweep():
    return run_growth_sweep("baseline", **SWEEP_KW)


def _worker_threads(coordinator, count, **kwargs):
    """In-process workers (collect_telemetry=False: the hub is a process
    global, and these share the test process)."""
    host, port = coordinator.address
    threads = [
        threading.Thread(
            target=run_worker,
            args=(f"{host}:{port}",),
            kwargs=dict(collect_telemetry=False, **kwargs),
            daemon=True,
        )
        for _ in range(count)
    ]
    for thread in threads:
        thread.start()
    return threads


def _spawn_worker_process(coordinator, tmp_path, *, extra_env=None):
    host, port = coordinator.address
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    env.update(extra_env or {})
    return subprocess.Popen(
        [
            sys.executable,
            "-c",
            "import sys; from repro.dist.worker import run_worker; "
            f"run_worker('{host}:{port}', checkpoint_dir=r'{tmp_path}')",
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


class TestDistributedDeterminism:
    def test_two_workers_match_serial(self, serial_sweep):
        with Coordinator("127.0.0.1", 0, lease_timeout=30.0) as coord:
            threads = _worker_threads(coord, 2)
            result = run_growth_sweep("baseline", coordinator=coord, **SWEEP_KW)
        for thread in threads:
            thread.join(timeout=10.0)
            assert not thread.is_alive(), "worker did not exit on SHUTDOWN"
        assert _series(result) == _series(serial_sweep)
        assert coord.units_completed == 2

    def test_worker_joining_mid_sweep(self, serial_sweep):
        # The second worker connects only after the sweep started; late
        # joiners must be handed work like anyone else.
        with Coordinator("127.0.0.1", 0, lease_timeout=30.0) as coord:
            _worker_threads(coord, 1)
            late = []

            def start_late(unit):
                if not late:
                    late.extend(_worker_threads(coord, 1))

            result = run_growth_sweep(
                "baseline", coordinator=coord, on_unit_done=start_late, **SWEEP_KW
            )
        assert _series(result) == _series(serial_sweep)

    def test_max_units_bounds_a_worker(self):
        # A drained worker (max_units=1) exits after one unit; a fresh
        # worker started afterwards picks up the rest of the sweep.
        with Coordinator("127.0.0.1", 0, lease_timeout=30.0) as coord:
            host, port = coord.address
            done = []

            def run_bounded():
                done.append(
                    run_worker(
                        f"{host}:{port}", max_units=1, collect_telemetry=False
                    )
                )

            bounded = threading.Thread(target=run_bounded, daemon=True)
            bounded.start()

            def start_backup(unit):
                # Fires when the bounded worker lands its one unit.
                if not done:
                    _worker_threads(coord, 1)

            result = run_growth_sweep(
                "baseline", coordinator=coord, on_unit_done=start_backup, **SWEEP_KW
            )
            bounded.join(timeout=10.0)
        assert done == [1]  # exited voluntarily after exactly one unit
        assert result.sizes == [60, 80]

    def test_no_workers_means_no_progress_then_failure_on_close(self):
        coord = Coordinator("127.0.0.1", 0, lease_timeout=30.0).start()
        error = []

        def run():
            try:
                run_growth_sweep("baseline", coordinator=coord, **SWEEP_KW)
            except DistributedError as exc:
                error.append(exc)

        thread = threading.Thread(target=run, daemon=True)
        thread.start()
        thread.join(timeout=0.5)
        assert thread.is_alive(), "sweep must wait for workers, not fail"
        coord.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()
        assert error, "closing mid-sweep should raise DistributedError"


class TestWorkerKillRecovery:
    def test_killed_worker_unit_is_releases_and_result_identical(
        self, serial_sweep, tmp_path, monkeypatch
    ):
        # Two real worker *processes*; whichever leases the n=80 unit
        # first dies hard (os._exit via the fault hook) after its first
        # measured event.  The coordinator must detect the loss, re-lease
        # the unit (the marker file disarms the fault for the retry), and
        # finish with numbers bit-identical to serial.
        marker = tmp_path / "died.marker"
        fault = {FAULT_INJECT_ENV: f"BASELINE:80:0:1:{marker}"}
        with Coordinator("127.0.0.1", 0, lease_timeout=30.0) as coord:
            workers = [
                _spawn_worker_process(
                    coord, tmp_path / "ck", extra_env=fault
                )
                for _ in range(2)
            ]
            try:
                result = run_growth_sweep(
                    "baseline", coordinator=coord, **SWEEP_KW
                )
            finally:
                for proc in workers:
                    proc.terminate()
                for proc in workers:
                    proc.wait(timeout=10.0)
        assert marker.exists(), "the fault should actually have fired"
        assert coord.requeues >= 1, "the killed worker's lease must requeue"
        assert _series(result) == _series(serial_sweep)
