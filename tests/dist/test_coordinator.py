"""Coordinator scheduling tests: leases, expiry, dedupe, failure paths.

These tests speak the wire protocol directly (a ``_FakeWorker`` is a raw
socket + :class:`FrameStream`), so they pin the coordinator's observable
behaviour rather than the worker implementation's.
"""

import dataclasses
import socket
import threading

import pytest

from repro.bgp.config import BGPConfig
from repro.core.sweep import SweepUnit, execute_sweep_unit
from repro.dist.coordinator import Coordinator, parse_address
from repro.dist.protocol import (
    PROTOCOL_VERSION,
    MSG_HEARTBEAT,
    MSG_LEASE,
    MSG_NACK,
    MSG_REGISTER,
    MSG_RESULT,
    FrameStream,
    batch_result_to_wire,
    unit_from_wire,
)
from repro.errors import DistributedError

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def _unit(n=60, batch_index=0, num_batches=1):
    return SweepUnit(
        scenario="baseline",
        n=n,
        num_origins=2,
        batch_index=batch_index,
        num_batches=num_batches,
        seed=9,
        config=FAST,
        scenario_kwargs=(),
    )


def _measured(result):
    """The batch result minus its wall-clock timing measurement."""
    return dataclasses.replace(result, wall_clock_seconds=0.0)


class _FakeWorker:
    """A raw protocol client; does exactly what each test tells it to."""

    def __init__(self, coordinator: Coordinator) -> None:
        host, port = coordinator.address
        sock = socket.create_connection((host, port), timeout=5.0)
        sock.settimeout(5.0)
        self.stream = FrameStream(sock)
        self.stream.send({"type": MSG_REGISTER})
        hello = self.stream.recv()
        assert hello["type"] == MSG_REGISTER
        self.worker_id = hello["worker_id"]

    def request(self, message):
        self.stream.send(message)
        return self.stream.recv()

    def lease(self):
        return self.request({"type": MSG_LEASE})

    def submit(self, lease_reply, result=None):
        result = result if result is not None else execute_sweep_unit(
            unit_from_wire(lease_reply["unit"])
        )
        return self.request(
            {
                "type": MSG_RESULT,
                "lease_id": lease_reply["lease_id"],
                "unit_key": lease_reply["unit_key"],
                "result": batch_result_to_wire(result),
                "wall_clock_seconds": 0.0,
                "telemetry": {},
            }
        )

    def close(self):
        self.stream.close()


class _SweepThread:
    """Drive coordinator.run_units in the background; join to collect."""

    def __init__(self, coordinator, units):
        self.results = None
        self.error = None

        def run():
            try:
                self.results = coordinator.run_units(units)
            except Exception as exc:  # re-raised by join()
                self.error = exc

        self.thread = threading.Thread(target=run, daemon=True)
        self.thread.start()

    def join(self, timeout=30.0):
        self.thread.join(timeout=timeout)
        assert not self.thread.is_alive(), "run_units did not finish"
        if self.error is not None:
            raise self.error
        return self.results


@pytest.fixture()
def coordinator():
    with Coordinator("127.0.0.1", 0, lease_timeout=1.0) as coord:
        yield coord


class TestParseAddress:
    def test_host_and_port(self):
        assert parse_address("10.0.0.1:9000") == ("10.0.0.1", 9000)

    def test_default_port(self):
        host, port = parse_address("example.net")
        assert host == "example.net"
        assert port == 7787

    def test_bare_port(self):
        assert parse_address(":9000") == ("127.0.0.1", 9000)

    @pytest.mark.parametrize("bad", ["", "host:notaport", "host:70000"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(DistributedError):
            parse_address(bad)


class TestLeasing:
    def test_register_hello_carries_intervals(self, coordinator):
        worker = _FakeWorker(coordinator)
        assert worker.worker_id == "w1"
        assert coordinator.worker_count == 1
        worker.close()

    def test_lease_without_work_says_retry(self, coordinator):
        worker = _FakeWorker(coordinator)
        reply = worker.lease()
        assert reply["type"] == MSG_LEASE
        assert reply["unit"] is None
        assert reply["retry_after_s"] > 0
        worker.close()

    def test_lease_execute_submit(self, coordinator):
        unit = _unit()
        sweep = _SweepThread(coordinator, [unit])
        worker = _FakeWorker(coordinator)
        reply = worker.lease()
        assert unit_from_wire(reply["unit"]) == unit
        assert reply["lease_id"]
        ack = worker.submit(reply)
        assert ack["accepted"] is True
        (result,) = sweep.join()
        assert _measured(result) == _measured(execute_sweep_unit(unit))
        assert coordinator.units_completed == 1
        worker.close()

    def test_identical_units_deduped(self, coordinator):
        # The same unit twice in one sweep is executed once, and its
        # result fills both submission-order slots.
        unit = _unit()
        sweep = _SweepThread(coordinator, [unit, unit])
        worker = _FakeWorker(coordinator)
        reply = worker.lease()
        worker.submit(reply)
        first, second = sweep.join()
        assert first == second
        assert coordinator.dedupe_hits == 1
        assert coordinator.units_completed == 1
        worker.close()

    def test_heartbeat_renews_known_lease(self, coordinator):
        sweep = _SweepThread(coordinator, [_unit()])
        worker = _FakeWorker(coordinator)
        reply = worker.lease()
        ack = worker.request(
            {"type": MSG_HEARTBEAT, "lease_id": reply["lease_id"]}
        )
        assert ack == {"type": MSG_HEARTBEAT, "known": True, "v": PROTOCOL_VERSION}
        ack = worker.request({"type": MSG_HEARTBEAT, "lease_id": "bogus"})
        assert ack["known"] is False
        worker.submit(reply)
        sweep.join()
        worker.close()

    def test_heartbeat_for_expired_lease_says_unknown(self, coordinator):
        # Once a silent worker's lease expires and the unit is re-leased,
        # the original lease id must answer ``known: false`` — the lease
        # index drops entries at release, not only at completion.
        unit = _unit()
        sweep = _SweepThread(coordinator, [unit])
        silent = _FakeWorker(coordinator)
        stale = silent.lease()
        assert stale["unit"] is not None

        backup = _FakeWorker(coordinator)
        reply = None
        for _ in range(50):  # lease_timeout=1.0s; poll until re-offered
            reply = backup.lease()
            if reply["unit"] is not None:
                break
            threading.Event().wait(0.1)
        assert reply["unit"] is not None, "unit was never re-leased"

        ack = silent.request(
            {"type": MSG_HEARTBEAT, "lease_id": stale["lease_id"]}
        )
        assert ack["known"] is False
        backup.submit(reply)
        sweep.join()
        silent.close()
        backup.close()

    def test_heartbeat_with_foreign_lease_says_unknown(self, coordinator):
        # A lease id is only valid from the worker that holds it: another
        # worker replaying it must not renew the deadline.
        unit = _unit()
        sweep = _SweepThread(coordinator, [unit])
        holder = _FakeWorker(coordinator)
        reply = holder.lease()
        assert reply["unit"] is not None

        imposter = _FakeWorker(coordinator)
        ack = imposter.request(
            {"type": MSG_HEARTBEAT, "lease_id": reply["lease_id"]}
        )
        assert ack["known"] is False
        # ... while the holder's own heartbeat still renews.
        ack = holder.request(
            {"type": MSG_HEARTBEAT, "lease_id": reply["lease_id"]}
        )
        assert ack["known"] is True
        holder.submit(reply)
        sweep.join()
        holder.close()
        imposter.close()

    def test_heartbeat_with_non_string_lease_id_says_unknown(self, coordinator):
        worker = _FakeWorker(coordinator)
        ack = worker.request({"type": MSG_HEARTBEAT, "lease_id": 7})
        assert ack["known"] is False
        worker.close()


class TestFailureRecovery:
    def test_silent_worker_lease_expires_and_unit_is_released(self, coordinator):
        # Worker A leases the unit and goes silent (no heartbeat, socket
        # still open).  After lease_timeout the unit must be offered to
        # worker B, and B's result completes the sweep.
        unit = _unit()
        sweep = _SweepThread(coordinator, [unit])
        silent = _FakeWorker(coordinator)
        granted = silent.lease()
        assert granted["unit"] is not None

        backup = _FakeWorker(coordinator)
        deadline_reply = None
        for _ in range(50):  # lease_timeout=1.0s; poll until re-offered
            deadline_reply = backup.lease()
            if deadline_reply["unit"] is not None:
                break
            threading.Event().wait(0.1)
        assert deadline_reply["unit"] is not None, "unit was never re-leased"
        assert coordinator.requeues == 1
        backup.submit(deadline_reply)
        (result,) = sweep.join()
        assert _measured(result) == _measured(execute_sweep_unit(unit))
        silent.close()
        backup.close()

    def test_disconnect_requeues_immediately(self, coordinator):
        unit = _unit()
        sweep = _SweepThread(coordinator, [unit])
        doomed = _FakeWorker(coordinator)
        assert doomed.lease()["unit"] is not None
        doomed.close()  # EOF: the coordinator must requeue without waiting

        backup = _FakeWorker(coordinator)
        reply = None
        for _ in range(50):
            reply = backup.lease()
            if reply["unit"] is not None:
                break
            threading.Event().wait(0.05)
        assert reply["unit"] is not None
        backup.submit(reply)
        sweep.join()
        assert coordinator.requeues == 1
        backup.close()

    def test_duplicate_result_discarded(self, coordinator):
        # The original leaseholder finishing after a re-lease completed
        # the unit gets a polite "duplicate" ack and changes nothing.
        unit = _unit()
        sweep = _SweepThread(coordinator, [unit])
        worker_a = _FakeWorker(coordinator)
        reply_a = worker_a.lease()
        result = execute_sweep_unit(unit)
        ack_a = worker_a.submit(reply_a, result=result)
        assert ack_a["accepted"] is True
        ack_late = worker_a.submit(reply_a, result=result)
        assert ack_late["accepted"] is False
        assert ack_late["duplicate"] is True
        (merged,) = sweep.join()
        assert merged == result
        assert coordinator.units_completed == 1
        worker_a.close()

    def test_nack_fails_the_sweep(self, coordinator):
        sweep = _SweepThread(coordinator, [_unit()])
        worker = _FakeWorker(coordinator)
        reply = worker.lease()
        worker.request(
            {
                "type": MSG_NACK,
                "lease_id": reply["lease_id"],
                "unit_key": reply["unit_key"],
                "error": "ExperimentError: boom",
            }
        )
        with pytest.raises(DistributedError, match="boom"):
            sweep.join()
        worker.close()

    def test_malformed_result_rejected_not_fatal(self, coordinator):
        sweep = _SweepThread(coordinator, [_unit()])
        worker = _FakeWorker(coordinator)
        reply = worker.lease()
        ack = worker.request(
            {
                "type": MSG_RESULT,
                "lease_id": reply["lease_id"],
                "unit_key": reply["unit_key"],
                "result": {"seed": 1},
            }
        )
        assert ack["accepted"] is False
        worker.submit(reply)  # the real result still lands
        sweep.join()
        worker.close()


class TestLifecycle:
    def test_run_units_requires_start(self):
        coord = Coordinator("127.0.0.1", 0)
        with pytest.raises(DistributedError, match="not listening"):
            coord.run_units([_unit()])

    def test_close_mid_sweep_raises(self, coordinator):
        sweep = _SweepThread(coordinator, [_unit()])
        coordinator.close()
        with pytest.raises(DistributedError, match="shut down"):
            sweep.join()

    def test_rejects_invalid_lease_timeout(self):
        with pytest.raises(DistributedError, match="lease_timeout"):
            Coordinator("127.0.0.1", 0, lease_timeout=0.0)
