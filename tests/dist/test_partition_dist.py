"""Distributed partition mode, end to end over real sockets.

One coordinator + K worker threads (the real ``run_worker`` loop, so the
lease-request-answered-with-PARTITION mode switch is exercised), churn
statistics compared against the serial kernel — the distributed
acceptance bar.
"""

import threading

import pytest

from repro.bgp.config import BGPConfig
from repro.core.cevent import pick_origins, run_c_event_experiment
from repro.dist.partition import (
    PartitionSession,
    run_distributed_partitioned_experiment,
)
from repro.dist.protocol import (
    counter_from_wire,
    counter_to_wire,
    part_report_from_wire,
    part_report_to_wire,
    partition_assignment_from_wire,
    partition_assignment_to_wire,
)
from repro.dist.worker import run_worker
from repro.errors import DistributedError
from repro.prefix.prefix import host_prefix
from repro.sim.counters import UpdateCounter
from repro.sim.partition import BorderEvent, PartReport
from repro.topology.generator import generate_topology
from repro.topology.partition import partition_graph
from repro.topology.scenarios import scenario_params
from repro.topology.types import NodeType, Relationship

from tests.sim.test_partition_kernel import assert_stats_equal

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def _graph(n=40, seed=13):
    return generate_topology(scenario_params("BASELINE", n), seed=seed)


def _launch_workers(count, address_box, ready):
    """Start ``count`` real worker loops once the session is listening."""
    threads = []

    def boot():
        assert ready.wait(timeout=15.0)
        for _ in range(count):
            thread = threading.Thread(
                target=run_worker,
                args=(address_box["address"],),
                kwargs={"collect_telemetry": False, "max_connect_attempts": 10},
                daemon=True,
            )
            thread.start()
            threads.append(thread)

    threading.Thread(target=boot, daemon=True).start()
    return threads


class TestDistributedPartitionedRun:
    def test_matches_serial_kernel_over_sockets(self):
        graph = _graph()
        origins = pick_origins(graph, 2, seed=3)
        serial = run_c_event_experiment(graph, FAST, origins=origins, seed=3)

        ready = threading.Event()
        address_box = {}

        def on_listening(address):
            address_box["address"] = address
            ready.set()

        workers = _launch_workers(2, address_box, ready)
        distributed = run_distributed_partitioned_experiment(
            graph,
            FAST,
            num_parts=2,
            origins=origins,
            seed=3,
            member_timeout=30.0,
            on_listening=on_listening,
        )
        assert_stats_equal(serial, distributed)
        for thread in workers:
            thread.join(timeout=10.0)
            assert not thread.is_alive(), "worker did not shut down"

    def test_enrol_times_out_without_workers(self):
        graph = _graph(n=30)
        with pytest.raises(DistributedError, match="0 of 2"):
            run_distributed_partitioned_experiment(
                graph,
                FAST,
                num_parts=2,
                origins=pick_origins(graph, 1, seed=0),
                seed=0,
                member_timeout=0.3,
            )

    def test_session_rejects_bad_timeout(self):
        with pytest.raises(DistributedError):
            PartitionSession(member_timeout=0.0)


class TestPartitionCodecs:
    def test_assignment_round_trip(self):
        graph = _graph(n=30)
        partition = partition_graph(graph, 2)
        frame = partition_assignment_to_wire(graph, partition, 1, FAST, seed=7)
        decoded = partition_assignment_from_wire(frame)
        assert decoded["config"] == FAST
        assert decoded["seed"] == 7
        assert decoded["part"] == 1
        assert decoded["num_parts"] == 2
        assert decoded["members"] == sorted(partition.members(1))
        restored = decoded["graph"]
        assert restored.node_ids == graph.node_ids
        assert list(restored.edges()) == list(graph.edges())
        # Neighbour iteration order must survive the wire: it fixes the
        # export order and therefore the member's event sequencing.
        for node_id in graph.node_ids:
            assert restored.adjacency_order(node_id) == graph.adjacency_order(
                node_id
            )

    def test_part_report_round_trip(self):
        report = PartReport(
            now=1.25,
            next_event_at=None,
            outbox=[
                BorderEvent(1.0, 1.001, 3, 9, host_prefix(2), (3, 1)),
                BorderEvent(1.1, 1.101, 4, 9, 17, None),
            ],
        )
        restored = part_report_from_wire(part_report_to_wire(report))
        assert restored == report

    def test_counter_round_trip_preserves_insertion_order(self):
        counter = UpdateCounter()
        for receiver, sender in [(9, 1), (2, 5), (7, 5)]:
            counter.record(
                receiver=receiver,
                sender=sender,
                sender_relationship=Relationship.CUSTOMER,
                is_withdrawal=False,
            )
        restored = counter_from_wire(counter_to_wire(counter))
        assert list(restored.received.items()) == list(counter.received.items())
        assert restored.total == counter.total
        assert dict(restored.received_by_pair) == dict(counter.received_by_pair)
