"""Tests for the update counter."""

from repro.sim.counters import UpdateCounter
from repro.topology.types import Relationship

CUST = Relationship.CUSTOMER
PEER = Relationship.PEER
PROV = Relationship.PROVIDER


class TestRecording:
    def test_basic_counts(self):
        counter = UpdateCounter()
        counter.record(1, 2, CUST, is_withdrawal=False)
        counter.record(1, 2, CUST, is_withdrawal=True)
        counter.record(1, 3, PEER, is_withdrawal=False)
        assert counter.total == 3
        assert counter.updates_at(1) == 3
        assert counter.updates_at(9) == 0
        assert counter.updates_at_by_relationship(1, CUST) == 2
        assert counter.updates_at_by_relationship(1, PEER) == 1
        assert counter.updates_at_by_relationship(1, PROV) == 0
        assert counter.announcements[1] == 2
        assert counter.withdrawals[1] == 1

    def test_disabled_counter_ignores(self):
        counter = UpdateCounter()
        counter.enabled = False
        counter.record(1, 2, CUST, is_withdrawal=False)
        assert counter.total == 0
        counter.enabled = True
        counter.record(1, 2, CUST, is_withdrawal=False)
        assert counter.total == 1

    def test_active_senders(self):
        counter = UpdateCounter()
        counter.record(1, 2, CUST, is_withdrawal=False)
        counter.record(1, 2, CUST, is_withdrawal=False)
        counter.record(1, 3, PEER, is_withdrawal=False)
        counter.record(4, 2, PROV, is_withdrawal=False)
        assert counter.active_senders(1) == {2: 2, 3: 1}
        assert counter.active_senders(4) == {2: 1}
        assert counter.active_senders(9) == {}

    def test_reset(self):
        counter = UpdateCounter()
        counter.record(1, 2, CUST, is_withdrawal=True)
        counter.reset()
        assert counter.total == 0
        assert counter.updates_at(1) == 0
        assert counter.active_senders(1) == {}
        assert counter.enabled  # reset keeps the enabled flag
