"""Tests for the SimNetwork wiring (links, counting, determinism)."""

import pytest

from repro.bgp.config import BGPConfig
from repro.errors import SimulationError
from repro.sim.network import SimNetwork
from repro.topology.types import NodeType, Relationship


class TestConstruction:
    def test_one_bgp_node_per_as(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config)
        assert set(network.nodes) == set(diamond.node_ids)
        assert network.node(0).node_type is NodeType.T

    def test_neighbor_wiring_matches_graph(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config)
        assert network.node(4).neighbors == {
            2: Relationship.PROVIDER,
            3: Relationship.PROVIDER,
        }

    def test_unknown_node_lookup(self, diamond_network):
        with pytest.raises(SimulationError):
            diamond_network.node(77)


class TestCounting:
    def test_counts_only_while_enabled(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        network.stop_counting()
        network.originate(4, 0)
        network.run_to_convergence()
        assert network.counter.total == 0
        assert network.delivered_messages > 0

        network.start_counting()
        network.withdraw(4, 0)
        network.run_to_convergence()
        assert network.counter.total > 0

    def test_updates_per_type_averages(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        network.originate(4, 0)
        network.run_to_convergence()
        per_type = network.updates_per_type()
        assert per_type[NodeType.T] > 0
        assert per_type[NodeType.C] == 0.0  # the origin hears nothing back

    def test_sender_relationship_classification(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        network.originate(4, 0)
        network.run_to_convergence()
        # M2 heard the announcement from its customer C4
        assert network.counter.updates_at_by_relationship(
            2, Relationship.CUSTOMER
        ) >= 1

    def test_nodes_with_route(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        network.originate(4, 0)
        network.run_to_convergence()
        assert set(network.nodes_with_route(0)) == {0, 1, 2, 3, 4}
        network.withdraw(4, 0)
        network.run_to_convergence()
        assert network.nodes_with_route(0) == []


class TestDeterminism:
    def test_same_seed_same_outcome(self, diamond, fast_config):
        def run(seed):
            network = SimNetwork(diamond, fast_config, seed=seed)
            network.originate(4, 0)
            network.run_to_convergence()
            return (
                network.delivered_messages,
                network.engine.now,
                {n: network.node(n).best_route(0) for n in network.nodes},
            )

        assert run(11) == run(11)

    def test_different_seed_different_timing(self, diamond, fast_config):
        def run(seed):
            network = SimNetwork(diamond, fast_config, seed=seed)
            network.originate(4, 0)
            network.run_to_convergence()
            return network.engine.now

        assert run(1) != run(2)
