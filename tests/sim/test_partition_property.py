"""Property-based equivalence: partitioned == serial under ANY cut.

The conservative window protocol's correctness argument (see
``repro/sim/partition.py``) does not depend on *where* the graph is
cut: border messages exchanged at a window barrier must commute back to
the serial delivery order for every placement.  Hypothesis drives
randomized assignments — arbitrary node scatterings, far worse cuts
than the customer-tree heuristic would ever produce — over a fixed-seed
topology and workload, and requires exact churn equality every time.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bgp.config import BGPConfig
from repro.core.cevent import pick_origins, run_c_event_experiment
from repro.sim.partition import run_partitioned_c_event_experiment
from repro.topology.generator import generate_topology
from repro.topology.partition import GraphPartition
from repro.topology.scenarios import scenario_params

from tests.sim.test_partition_kernel import assert_stats_equal

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)
_GRAPH = generate_topology(scenario_params("BASELINE", 30), seed=11)
_ORIGINS = pick_origins(_GRAPH, 1, seed=11)
#: serial baseline per wrate variant, computed once per test session
_SERIAL = {}


def _serial(wrate):
    if wrate not in _SERIAL:
        config = FAST if not wrate else BGPConfig(
            mrai=FAST.mrai,
            link_delay=FAST.link_delay,
            processing_time_max=FAST.processing_time_max,
            wrate=True,
        )
        _SERIAL[wrate] = (
            config,
            run_c_event_experiment(_GRAPH, config, origins=_ORIGINS, seed=11),
        )
    return _SERIAL[wrate]


def _random_partition(num_parts, assignment_seed):
    """An arbitrary (usually terrible) cut: nodes scattered at random."""
    rng = random.Random(assignment_seed)
    assignment = {
        node_id: rng.randrange(num_parts) for node_id in _GRAPH.node_ids
    }
    # Pin the first num_parts nodes so every part is non-empty.
    for part, node_id in zip(range(num_parts), _GRAPH.node_ids):
        assignment[node_id] = part
    return GraphPartition(num_parts=num_parts, assignment=assignment)


class TestCutPlacementCommutes:
    @given(
        num_parts=st.integers(min_value=2, max_value=3),
        assignment_seed=st.integers(min_value=0, max_value=2**32 - 1),
        wrate=st.booleans(),
    )
    @settings(max_examples=12, deadline=None)
    def test_any_cut_placement_matches_serial(
        self, num_parts, assignment_seed, wrate
    ):
        partition = _random_partition(num_parts, assignment_seed)
        config, serial = _serial(wrate)
        partitioned = run_partitioned_c_event_experiment(
            _GRAPH,
            config,
            num_parts=num_parts,
            partition=partition,
            origins=_ORIGINS,
            seed=11,
        )
        assert_stats_equal(serial, partitioned)
