"""Serial-vs-partitioned equivalence: the partition mode's acceptance bar.

The graph-partitioned kernel must reproduce the serial kernel's churn
statistics on a fixed-seed C-event scenario.  With continuously jittered
service times the two kernels order events identically (see the
``repro.sim.partition`` module docstring), so the comparison is **exact**
— no tolerance.
"""

import dataclasses

import pytest

from repro.bgp.config import BGPConfig
from repro.core.cevent import pick_origins, run_c_event_experiment
from repro.errors import SimulationError
from repro.sim.network import SimNetwork
from repro.sim.partition import (
    BorderEvent,
    LockstepRunner,
    build_local_parts,
    run_partitioned_c_event_experiment,
)
from repro.topology.generator import generate_topology
from repro.topology.partition import GraphPartition, partition_graph
from repro.topology.scenarios import scenario_params
from repro.topology.types import NodeType


def _graph(n=60, scenario="BASELINE", seed=11):
    return generate_topology(scenario_params(scenario, n), seed=seed)


def assert_stats_equal(serial, partitioned):
    """Every reproducible CEventStats field must match exactly."""
    assert partitioned.origins == serial.origins
    assert partitioned.measured_messages == serial.measured_messages
    assert partitioned.mean_down_convergence == serial.mean_down_convergence
    assert partitioned.mean_up_convergence == serial.mean_up_convergence
    assert partitioned.down_updates_per_type == serial.down_updates_per_type
    assert partitioned.up_updates_per_type == serial.up_updates_per_type
    for node_type in NodeType:
        theirs = serial.per_type.get(node_type)
        ours = partitioned.per_type.get(node_type)
        if theirs is None:
            assert ours is None
            continue
        assert dataclasses.asdict(ours) == dataclasses.asdict(theirs)


class TestEquivalence:
    @pytest.mark.parametrize("num_parts", [2, 3])
    def test_matches_serial_kernel(self, num_parts):
        graph = _graph()
        config = BGPConfig(mrai=30.0)
        origins = pick_origins(graph, 4, seed=5)
        serial = run_c_event_experiment(
            graph, config, origins=origins, seed=5
        )
        partitioned = run_partitioned_c_event_experiment(
            graph, config, num_parts=num_parts, origins=origins, seed=5
        )
        assert_stats_equal(serial, partitioned)

    def test_matches_serial_without_rate_limiting(self):
        graph = _graph(n=50, seed=3)
        config = BGPConfig(mrai=0.0)
        origins = pick_origins(graph, 3, seed=1)
        serial = run_c_event_experiment(graph, config, origins=origins, seed=1)
        partitioned = run_partitioned_c_event_experiment(
            graph, config, num_parts=2, origins=origins, seed=1
        )
        assert_stats_equal(serial, partitioned)

    def test_matches_serial_with_wrate(self):
        graph = _graph(n=40, seed=9)
        config = BGPConfig(mrai=30.0, wrate=True)
        origins = pick_origins(graph, 3, seed=2)
        serial = run_c_event_experiment(graph, config, origins=origins, seed=2)
        partitioned = run_partitioned_c_event_experiment(
            graph, config, num_parts=2, origins=origins, seed=2
        )
        assert_stats_equal(serial, partitioned)

    def test_single_partition_degenerates_to_serial(self):
        graph = _graph(n=40)
        origins = pick_origins(graph, 2, seed=0)
        serial = run_c_event_experiment(graph, origins=origins, seed=0)
        partitioned = run_partitioned_c_event_experiment(
            graph, num_parts=1, origins=origins, seed=0
        )
        assert_stats_equal(serial, partitioned)

    def test_partitioned_run_is_deterministic(self):
        graph = _graph(n=50)
        origins = pick_origins(graph, 2, seed=4)
        first = run_partitioned_c_event_experiment(
            graph, num_parts=3, origins=origins, seed=4
        )
        second = run_partitioned_c_event_experiment(
            graph, num_parts=3, origins=origins, seed=4
        )
        assert_stats_equal(first, second)


class TestLockstepRunner:
    def test_rejects_zero_link_delay(self):
        graph = _graph(n=30)
        partition = partition_graph(graph, 2)
        config = BGPConfig()
        parts = build_local_parts(graph, partition, config, seed=0)
        with pytest.raises(SimulationError):
            LockstepRunner(partition, parts, link_delay=0.0)

    def test_rejects_member_count_mismatch(self):
        graph = _graph(n=30)
        partition = partition_graph(graph, 2)
        parts = build_local_parts(graph, partition, BGPConfig(), seed=0)
        with pytest.raises(SimulationError):
            LockstepRunner(partition, parts[:1], link_delay=0.002)

    def test_counts_windows_and_border_events(self):
        graph = _graph(n=50)
        partition = partition_graph(graph, 2)
        config = BGPConfig()
        parts = build_local_parts(graph, partition, config, seed=0)
        runner = LockstepRunner(partition, parts, link_delay=config.link_delay)
        origin = pick_origins(graph, 1, seed=0)[0]
        from repro.prefix.prefix import host_prefix

        runner.apply("originate", origin, host_prefix(0))
        runner.converge()
        assert runner.windows > 0
        assert runner.border_events > 0
        assert runner.now > 0.0


class TestBorderRouting:
    def test_partition_network_routes_non_members_to_outbox(self):
        graph = _graph(n=40)
        partition = partition_graph(graph, 2)
        config = BGPConfig()
        members = sorted(partition.members(0))
        network = SimNetwork(graph, config, seed=0, local_nodes=members)
        assert set(network.nodes) == set(members)
        origin = members[0]
        from repro.prefix.prefix import host_prefix

        network.originate(origin, host_prefix(0))
        network.run_to_convergence()
        # A BASELINE graph cut always carries some border traffic.
        outbox = network.drain_border_outbox()
        assert outbox
        assert network.border_outbox == []
        for sent_at, message in outbox:
            assert message.receiver not in set(members)
            assert sent_at >= 0.0

    def test_inject_border_rejects_non_member(self):
        graph = _graph(n=30)
        partition = partition_graph(graph, 2)
        members = sorted(partition.members(0))
        outsider = sorted(partition.members(1))[0]
        network = SimNetwork(graph, BGPConfig(), seed=0, local_nodes=members)
        from repro.bgp.messages import UpdateMessage

        message = UpdateMessage(
            sender=members[0], receiver=outsider, prefix=1, path=(members[0],)
        )
        with pytest.raises(SimulationError):
            network.inject_border(message, deliver_at=1.0)


class TestBorderEventCodec:
    def test_jsonable_round_trip(self):
        from repro.prefix.prefix import host_prefix

        event = BorderEvent(
            sent_at=1.5,
            deliver_at=1.502,
            sender=7,
            receiver=9,
            prefix=host_prefix(3),
            path=(7, 4, 2),
        )
        assert BorderEvent.from_jsonable(event.to_jsonable()) == event

    def test_jsonable_round_trip_withdrawal_and_int_prefix(self):
        event = BorderEvent(
            sent_at=0.25,
            deliver_at=0.252,
            sender=1,
            receiver=2,
            prefix=17,
            path=None,
        )
        restored = BorderEvent.from_jsonable(event.to_jsonable())
        assert restored == event
        assert restored.to_message().is_withdrawal

    def test_sort_key_orders_canonically(self):
        early = BorderEvent(0.1, 0.102, 5, 6, 1, (5,))
        late = BorderEvent(0.2, 0.202, 1, 2, 1, (1,))
        assert early.sort_key() < late.sort_key()


class TestPartitionedExperimentValidation:
    def test_rejects_unknown_origin(self):
        graph = _graph(n=30)
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_partitioned_c_event_experiment(
                graph, num_parts=2, origins=[10**9], seed=0
            )

    def test_rejects_empty_origins(self):
        graph = _graph(n=30)
        from repro.errors import ExperimentError

        with pytest.raises(ExperimentError):
            run_partitioned_c_event_experiment(
                graph, num_parts=2, origins=[], seed=0
            )

    def test_explicit_partition_is_honoured(self):
        graph = _graph(n=40)
        explicit = GraphPartition(
            num_parts=2,
            assignment={n: n % 2 for n in graph.node_ids},
        )
        origins = pick_origins(graph, 2, seed=6)
        serial = run_c_event_experiment(graph, origins=origins, seed=6)
        partitioned = run_partitioned_c_event_experiment(
            graph, partition=explicit, origins=origins, seed=6
        )
        assert_stats_equal(serial, partitioned)
