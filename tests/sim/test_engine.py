"""Tests for the discrete-event engine."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConvergenceError, SimulationError
from repro.sim.engine import Engine


class TestScheduling:
    def test_events_run_in_time_order(self):
        engine = Engine()
        order = []
        engine.schedule(3.0, lambda: order.append("c"))
        engine.schedule(1.0, lambda: order.append("a"))
        engine.schedule(2.0, lambda: order.append("b"))
        engine.run()
        assert order == ["a", "b", "c"]
        assert engine.now == 3.0

    def test_fifo_tie_break(self):
        engine = Engine()
        order = []
        for label in "abc":
            engine.schedule(1.0, lambda lbl=label: order.append(lbl))
        engine.run()
        assert order == ["a", "b", "c"]

    def test_schedule_at_absolute(self):
        engine = Engine()
        seen = []
        engine.schedule_at(5.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-0.1, lambda: None)

    def test_past_absolute_time_rejected(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        with pytest.raises(SimulationError):
            engine.schedule_at(0.5, lambda: None)

    def test_nested_scheduling(self):
        engine = Engine()
        seen = []

        def first():
            seen.append(engine.now)
            engine.schedule(1.0, lambda: seen.append(engine.now))

        engine.schedule(1.0, first)
        engine.run()
        assert seen == [1.0, 2.0]


class TestRunControl:
    def test_run_until_pauses(self):
        engine = Engine()
        seen = []
        engine.schedule(1.0, lambda: seen.append(1))
        engine.schedule(5.0, lambda: seen.append(5))
        engine.run(until=2.0)
        assert seen == [1]
        assert engine.now == 2.0
        assert engine.pending_events == 1
        engine.run()
        assert seen == [1, 5]

    def test_run_until_advances_clock_on_empty_queue(self):
        """run(until=...) with nothing queued acts as a settle period."""
        engine = Engine()
        engine.run(until=42.0)
        assert engine.now == 42.0

    def test_event_budget(self):
        engine = Engine()

        def rescheduling():
            engine.schedule(1.0, rescheduling)

        engine.schedule(1.0, rescheduling)
        with pytest.raises(ConvergenceError, match="budget"):
            engine.run(max_events=100)

    def test_step_returns_false_when_empty(self):
        assert Engine().step() is False

    def test_executed_events_counter(self):
        engine = Engine()
        for _ in range(5):
            engine.schedule(1.0, lambda: None)
        engine.run()
        assert engine.executed_events == 5

    def test_reset(self):
        engine = Engine()
        engine.schedule(1.0, lambda: None)
        engine.run()
        engine.schedule(9.0, lambda: None)
        engine.reset()
        assert engine.now == 0.0
        assert engine.pending_events == 0
        assert engine.executed_events == 0

    def test_run_until_past_never_rewinds_clock(self):
        """Regression: run(until=t) with t < now must not move time backwards."""
        engine = Engine()
        engine.schedule(5.0, lambda: None)
        engine.run()
        assert engine.now == 5.0
        engine.run(until=1.0)
        assert engine.now == 5.0
        # Relative scheduling after the no-op run still works from t=5.
        seen = []
        engine.schedule(1.0, lambda: seen.append(engine.now))
        engine.run()
        assert seen == [6.0]

    def test_run_until_past_with_pending_events(self):
        """A past horizon executes nothing and leaves the queue intact."""
        engine = Engine()
        engine.schedule(2.0, lambda: None)
        engine.run()
        engine.schedule(3.0, lambda: None)  # fires at t=5
        engine.run(until=1.0)
        assert engine.now == 2.0
        assert engine.pending_events == 1
        engine.run()
        assert engine.now == 5.0

    def test_reset_restores_tie_break_order(self):
        """Regression: reset() must restart the FIFO sequence counter.

        A reset engine has to schedule same-time events in exactly the
        order a fresh engine would (the bit-reproducibility guarantee).
        """

        def event_order(engine):
            order = []
            for label in "abcde":
                engine.schedule(1.0, lambda lbl=label: order.append(lbl))
            engine.run()
            return order

        fresh = Engine()
        used = Engine()
        event_order(used)  # consume some sequence numbers
        used.reset()
        assert event_order(used) == event_order(fresh)

    def test_reset_sequence_counter_restarts(self):
        engine = Engine()
        for _ in range(3):
            engine.schedule(1.0, lambda: None)
        engine.run()
        engine.reset()
        engine.schedule(1.0, lambda: None)
        assert engine._queue[0][1] == 0

    def test_reset_restores_all_checkpointable_state(self):
        """reset() must zero the full state inventory a checkpoint covers.

        The engine's checkpointable state is exactly: the clock, the
        pending-event heap, the FIFO sequence counter, and the
        executed-event count.  A reset engine must be indistinguishable
        from a fresh one on every one of them — if a new field joins the
        checkpoint payload, this inventory (and reset()) must grow too.
        """
        fresh = Engine()
        used = Engine()
        for delay in (1.0, 1.0, 3.0):
            used.schedule(delay, lambda: None)
        used.step()
        used.schedule_at(7.5, lambda: None)  # leave events pending
        assert used.pending_events > 0 and used.now > 0.0

        used.reset()
        assert used.now == fresh.now == 0.0
        assert used.dump_pending() == fresh.dump_pending() == []
        assert used.next_sequence == fresh.next_sequence == 0
        assert used.executed_events == fresh.executed_events == 0


class TestCancellation:
    def test_cancelled_event_never_runs(self):
        engine = Engine()
        seen = []
        handle = engine.schedule(1.0, lambda: seen.append("cancelled"))
        engine.schedule(2.0, lambda: seen.append("kept"))
        engine.cancel(handle)
        engine.run()
        assert seen == ["kept"]
        assert engine.executed_events == 1
        assert engine.cancelled_events == 1

    def test_cancel_is_idempotent(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.cancel(handle)
        engine.cancel(handle)
        assert engine.pending_events == 0
        assert engine.cancelled_events == 1
        engine.run()
        assert engine.executed_events == 0

    def test_pending_events_excludes_cancelled(self):
        engine = Engine()
        handles = [engine.schedule(float(i + 1), lambda: None) for i in range(5)]
        assert engine.pending_events == 5
        engine.cancel(handles[0])
        engine.cancel(handles[3])
        assert engine.pending_events == 3

    def test_dump_pending_excludes_cancelled(self):
        engine = Engine()
        keep = lambda: None  # noqa: E731
        drop = lambda: None  # noqa: E731
        engine.schedule(1.0, keep)
        handle = engine.schedule(2.0, drop)
        engine.cancel(handle)
        dumped = engine.dump_pending()
        assert [callback for _, _, callback in dumped] == [keep]

    def test_cancelled_head_does_not_advance_clock(self):
        """Discarding a dead heap head is bookkeeping, not simulation:
        neither the clock nor executed_events may move."""
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.schedule(5.0, lambda: None)
        engine.cancel(handle)
        assert engine.step() is True
        assert engine.now == 5.0
        assert engine.executed_events == 1

    def test_step_returns_false_when_only_cancelled_remain(self):
        engine = Engine()
        handle = engine.schedule(1.0, lambda: None)
        engine.cancel(handle)
        assert engine.step() is False
        assert engine.now == 0.0

    def test_cancelled_events_do_not_count_against_budget(self):
        engine = Engine()
        for i in range(50):
            handle = engine.schedule(float(i + 1), lambda: None)
            engine.cancel(handle)
        engine.schedule(100.0, lambda: None)
        engine.run(max_events=1)  # only the live event should be charged
        assert engine.executed_events == 1

    def test_reset_clears_cancellation_counters(self):
        engine = Engine()
        engine.cancel(engine.schedule(1.0, lambda: None))
        engine.reset()
        assert engine.cancelled_events == 0
        assert engine.pending_events == 0

    def test_restore_state_adopts_list_entries_by_identity(self):
        """Restoring from list entries must keep them live handles:
        cancelling the original entry cancels the restored event."""
        engine = Engine()
        seen = []
        entry = [3.0, 0, lambda: seen.append("x")]
        engine.restore_state(
            now=1.0, next_sequence=1, executed_events=0, pending=[entry]
        )
        engine.cancel(entry)
        engine.run()
        assert seen == []
        assert engine.pending_events == 0


class TestRestoreState:
    def test_restore_round_trip(self):
        engine = Engine()
        marks = []
        engine.schedule(1.0, lambda: marks.append("early"))
        engine.run()
        pending = [(5.0, 1, lambda: marks.append("a")), (5.0, 2, lambda: marks.append("b"))]
        engine.restore_state(
            now=2.0, next_sequence=3, executed_events=4, pending=pending
        )
        assert engine.now == 2.0
        assert engine.next_sequence == 3
        assert engine.executed_events == 4
        engine.run()
        assert marks == ["early", "a", "b"]  # FIFO order preserved

    def test_restore_rejects_past_events(self):
        engine = Engine()
        with pytest.raises(SimulationError, match="predates"):
            engine.restore_state(
                now=5.0,
                next_sequence=2,
                executed_events=0,
                pending=[(1.0, 0, lambda: None)],
            )

    def test_restore_rejects_future_sequences(self):
        engine = Engine()
        with pytest.raises(SimulationError, match="next_sequence"):
            engine.restore_state(
                now=0.0,
                next_sequence=1,
                executed_events=0,
                pending=[(1.0, 5, lambda: None)],
            )


class TestEngineProperties:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_execution_times_monotone(self, delays):
        engine = Engine()
        times = []
        for delay in delays:
            engine.schedule(delay, lambda: times.append(engine.now))
        engine.run()
        assert times == sorted(times)
        assert len(times) == len(delays)

    @given(seed=st.integers(min_value=0, max_value=2**16))
    @settings(max_examples=20, deadline=None)
    def test_random_cascades_terminate(self, seed):
        """Random finite cascades execute exactly once per scheduled event."""
        rng = random.Random(seed)
        engine = Engine()
        counter = {"n": 0}

        def spawn(depth):
            counter["n"] += 1
            if depth > 0:
                for _ in range(rng.randrange(3)):
                    engine.schedule(rng.uniform(0, 2), lambda d=depth - 1: spawn(d))

        engine.schedule(0.0, lambda: spawn(4))
        engine.run()
        assert counter["n"] == engine.executed_events
