"""Tests for monitor tracing and burstiness analysis."""

import pytest

from repro.bgp.config import BGPConfig
from repro.errors import ParameterError, SimulationError
from repro.sim.network import SimNetwork
from repro.sim.trace import MonitorTrace


class TestMonitorTrace:
    def test_watches_only_listed_nodes(self):
        trace = MonitorTrace([1, 2])
        assert trace.watches(1)
        assert not trace.watches(3)
        assert trace.monitors == frozenset({1, 2})

    def test_record_and_filter(self):
        trace = MonitorTrace([1, 2])
        trace.record(0.5, 1, 9, is_withdrawal=False)
        trace.record(1.5, 2, 9, is_withdrawal=True)
        trace.record(2.5, 1, 8, is_withdrawal=False)
        assert len(trace) == 3
        assert len(trace.updates(1)) == 2
        assert trace.arrival_times(1) == [0.5, 2.5]

    def test_counts(self):
        trace = MonitorTrace([1])
        trace.record(0.0, 1, 2, is_withdrawal=True)
        trace.record(1.0, 1, 2, is_withdrawal=False)
        counts = trace.counts(1)
        assert counts == {"total": 2, "announcements": 1, "withdrawals": 1}


class TestRateSeries:
    def make_trace(self, times):
        trace = MonitorTrace([1])
        for t in times:
            trace.record(t, 1, 2, is_withdrawal=False)
        return trace

    def test_binning(self):
        trace = self.make_trace([0.1, 0.2, 0.9, 1.5])
        series = trace.rate_series(1.0, start=0.0, end=2.0)
        assert len(series) == 2
        assert series[0] == (0.0, 3.0)  # 3 arrivals in [0,1)
        assert series[1] == (1.0, 1.0)

    def test_empty_trace(self):
        trace = MonitorTrace([1])
        assert trace.rate_series(1.0) == []

    def test_invalid_bin_width(self):
        trace = self.make_trace([0.0])
        with pytest.raises(ParameterError):
            trace.rate_series(0.0)

    def test_invalid_window(self):
        trace = self.make_trace([5.0])
        with pytest.raises(ParameterError):
            trace.rate_series(1.0, start=10.0, end=5.0)

    def test_no_bin_edge_drift_over_long_window(self):
        # Regression: edges accumulated as `edge += bin_width` drift by an
        # ulp per bin; with one arrival at every exact multiple of 0.1 the
        # drifted edges land past some timestamps, yielding bins counting
        # 0 or 2 arrivals.  Exact edges (lo + i * width) count 1 everywhere.
        bin_width = 0.1
        arrivals = [i * bin_width for i in range(5000)]
        trace = self.make_trace(arrivals)
        series = trace.rate_series(bin_width, start=0.0, end=500.0)
        assert len(series) == 5000
        counts = {round(rate * bin_width) for _, rate in series}
        assert counts == {1}

    def test_edges_are_exact_multiples(self):
        trace = self.make_trace([0.0])
        series = trace.rate_series(0.1, start=0.0, end=100.0)
        for index, (edge, _rate) in enumerate(series):
            assert edge == 0.0 + index * 0.1


class TestBurstiness:
    def test_peak_to_mean(self):
        trace = MonitorTrace([1])
        # 10 arrivals in one bin, nothing in the next nine
        for i in range(10):
            trace.record(0.05 * i, 1, 2, is_withdrawal=False)
        trace.record(9.5, 1, 2, is_withdrawal=False)
        report = trace.burstiness(1.0)
        assert report.bins == 11  # window is [first, last + bin_width)
        assert report.peak_rate == 10.0
        assert report.peak_to_mean > 5.0
        assert 0.0 < report.quiet_fraction < 1.0

    def test_empty_raises(self):
        with pytest.raises(ParameterError):
            MonitorTrace([1]).burstiness(1.0)


class TestEdgeCases:
    """Degenerate traces the analysis helpers must handle gracefully."""

    def test_empty_trace_everywhere(self):
        trace = MonitorTrace([1])
        assert len(trace) == 0
        assert trace.updates() == []
        assert trace.arrival_times() == []
        assert trace.rate_series(1.0) == []
        assert trace.counts() == {
            "total": 0,
            "announcements": 0,
            "withdrawals": 0,
        }
        with pytest.raises(ParameterError):
            trace.burstiness(1.0)

    def test_no_monitors_records_nothing(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        trace = network.attach_monitors([])
        network.originate(4, 0)
        network.run_to_convergence()
        assert len(trace) == 0

    def test_single_update_trace(self):
        trace = MonitorTrace([1])
        trace.record(3.5, 1, 2, is_withdrawal=False)
        assert trace.arrival_times() == [3.5]
        series = trace.rate_series(1.0)
        assert series == [(3.5, 1.0)]  # one bin: [first, first + width)
        report = trace.burstiness(1.0)
        assert report.bins == 1
        assert report.mean_rate == report.peak_rate == 1.0
        assert report.peak_to_mean == 1.0
        assert report.quiet_fraction == 0.0

    def test_identical_timestamps(self):
        trace = MonitorTrace([1])
        for _ in range(5):
            trace.record(2.0, 1, 2, is_withdrawal=False)
        assert trace.arrival_times() == [2.0] * 5
        series = trace.rate_series(0.5)
        assert series == [(2.0, 10.0)]  # 5 arrivals / 0.5 s bin
        report = trace.burstiness(0.5)
        assert report.bins == 1
        assert report.peak_rate == 10.0
        assert report.peak_to_mean == 1.0

    def test_identical_timestamps_across_monitors_filterable(self):
        trace = MonitorTrace([1, 2])
        trace.record(1.0, 1, 9, is_withdrawal=False)
        trace.record(1.0, 2, 9, is_withdrawal=True)
        trace.record(1.0, 1, 8, is_withdrawal=False)
        assert len(trace.updates(1)) == 2
        assert trace.counts(2) == {
            "total": 1,
            "announcements": 0,
            "withdrawals": 1,
        }


class TestNetworkIntegration:
    def test_attach_and_record(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        trace = network.attach_monitors([0])
        network.originate(4, 0)
        network.run_to_convergence()
        assert len(trace) > 0
        assert all(u.receiver == 0 for u in trace.updates())
        # arrivals carry increasing timestamps
        times = trace.arrival_times()
        assert times == sorted(times)

    def test_detach_stops_recording(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        trace = network.attach_monitors([0])
        network.originate(4, 0)
        network.run_to_convergence()
        before = len(trace)
        network.detach_monitors()
        network.withdraw(4, 0)
        network.run_to_convergence()
        assert len(trace) == before

    def test_unknown_monitor_rejected(self, diamond_network):
        with pytest.raises(SimulationError):
            diamond_network.attach_monitors([77])
