"""Tests for seed derivation."""

from repro.sim.rng import derive_rng, derive_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(1, 2, 3) == derive_seed(1, 2, 3)

    def test_label_sensitivity(self):
        assert derive_seed(1, 2) != derive_seed(1, 3)
        assert derive_seed(1, 2) != derive_seed(2, 2)

    def test_streams_uncorrelated(self):
        """Adjacent master seeds yield wildly different child seeds."""
        a = derive_seed(0, 1)
        b = derive_seed(1, 1)
        assert bin(a ^ b).count("1") > 10


class TestDeriveRng:
    def test_same_labels_same_stream(self):
        r1 = derive_rng(5, 7)
        r2 = derive_rng(5, 7)
        assert [r1.random() for _ in range(5)] == [r2.random() for _ in range(5)]

    def test_different_labels_different_stream(self):
        r1 = derive_rng(5, 7)
        r2 = derive_rng(5, 8)
        assert [r1.random() for _ in range(5)] != [r2.random() for _ in range(5)]
