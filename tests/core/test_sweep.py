"""Tests for growth sweeps."""

import os

import pytest

from repro.bgp.config import BGPConfig
from repro.core.sweep import (
    SweepResult,
    SweepUnit,
    execute_sweep_unit,
    resolve_jobs,
    run_growth_sweep,
    run_scenario_comparison,
    split_origins,
)
from repro.errors import ExperimentError
from repro.topology.types import NodeType, Relationship

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.01)
SIZES = (80, 160)


def measured_numbers(sweep):
    """Every deterministic quantity of a sweep (timings excluded)."""
    from repro.experiments.results_io import sweep_result_to_dict

    data = sweep_result_to_dict(sweep)
    for stats in data["stats"]:
        del stats["wall_clock_seconds"]
    return data


class TestRunGrowthSweep:
    def test_basic_sweep(self):
        sweep = run_growth_sweep(
            "BASELINE", sizes=SIZES, config=FAST, num_origins=2, seed=1
        )
        assert sweep.sizes == list(SIZES)
        assert len(sweep.stats) == 2
        assert sweep.scenario == "BASELINE"
        assert all(s.n == n for s, n in zip(sweep.stats, SIZES))

    def test_series_extractors(self):
        sweep = run_growth_sweep(
            "BASELINE", sizes=SIZES, config=FAST, num_origins=2, seed=1
        )
        u = sweep.u_series(NodeType.T)
        assert len(u) == 2 and all(v > 0 for v in u)
        assert len(sweep.m_series(NodeType.T, Relationship.CUSTOMER)) == 2
        assert len(sweep.q_series(NodeType.M, Relationship.PROVIDER)) == 2
        assert len(sweep.e_series(NodeType.M, Relationship.PROVIDER)) == 2
        rel = sweep.relative_u_series(NodeType.T)
        assert rel[0] == pytest.approx(1.0)

    def test_stats_at(self):
        sweep = run_growth_sweep(
            "BASELINE", sizes=SIZES, config=FAST, num_origins=2, seed=1
        )
        assert sweep.stats_at(80).n == 80
        with pytest.raises(ExperimentError):
            sweep.stats_at(999)

    def test_empty_sizes_rejected(self):
        with pytest.raises(ExperimentError):
            run_growth_sweep("BASELINE", sizes=(), config=FAST)

    def test_progress_callback(self):
        seen = []
        run_growth_sweep(
            "BASELINE",
            sizes=(80,),
            config=FAST,
            num_origins=1,
            seed=1,
            progress=lambda scenario, n, stats: seen.append((scenario, n)),
        )
        assert seen == [("BASELINE", 80)]

    def test_scenario_kwargs_forwarded(self):
        sweep = run_growth_sweep(
            "STATIC-MIDDLE",
            sizes=(80, 160),
            config=FAST,
            num_origins=1,
            seed=1,
            scenario_kwargs={"reference_n": 80},
        )
        # transit population frozen at its n=80 value
        small = sweep.stats_at(80)
        large = sweep.stats_at(160)
        assert small.per_type[NodeType.M].node_count == large.per_type[
            NodeType.M
        ].node_count

    def test_reproducibility(self):
        a = run_growth_sweep("BASELINE", sizes=(80,), config=FAST, num_origins=2, seed=5)
        b = run_growth_sweep("BASELINE", sizes=(80,), config=FAST, num_origins=2, seed=5)
        assert a.u_series(NodeType.T) == b.u_series(NodeType.T)


class TestParallelExecution:
    """Serial vs parallel sweeps must be bit-identical."""

    def test_jobs_do_not_change_results(self):
        kwargs = dict(sizes=SIZES, config=FAST, num_origins=3, seed=2)
        serial = run_growth_sweep("BASELINE", **kwargs)
        parallel = run_growth_sweep("BASELINE", jobs=4, **kwargs)
        assert measured_numbers(parallel) == measured_numbers(serial)

    def test_jobs_do_not_change_batched_results(self):
        kwargs = dict(
            sizes=SIZES, config=FAST, num_origins=4, seed=2, origin_batch_size=2
        )
        serial = run_growth_sweep("BASELINE", **kwargs)
        parallel = run_growth_sweep("BASELINE", jobs=4, **kwargs)
        assert measured_numbers(parallel) == measured_numbers(serial)

    def test_default_path_matches_jobs_one(self):
        kwargs = dict(sizes=(80,), config=FAST, num_origins=2, seed=3)
        assert measured_numbers(
            run_growth_sweep("BASELINE", **kwargs)
        ) == measured_numbers(run_growth_sweep("BASELINE", jobs=1, **kwargs))

    def test_batched_merge_preserves_origin_set(self):
        kwargs = dict(sizes=(80,), config=FAST, num_origins=4, seed=2)
        unbatched = run_growth_sweep("BASELINE", **kwargs)
        batched = run_growth_sweep("BASELINE", origin_batch_size=2, **kwargs)
        assert batched.stats[0].origins == unbatched.stats[0].origins
        assert batched.stats[0].per_type.keys() == unbatched.stats[0].per_type.keys()

    def test_progress_callback_order_under_parallelism(self):
        seen = []
        run_growth_sweep(
            "BASELINE",
            sizes=SIZES,
            config=FAST,
            num_origins=2,
            seed=1,
            jobs=2,
            progress=lambda scenario, n, stats: seen.append(n),
        )
        assert seen == list(SIZES)

    def test_negative_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            run_growth_sweep(
                "BASELINE", sizes=(80,), config=FAST, num_origins=1, jobs=-1
            )

    def test_bad_batch_size_rejected(self):
        with pytest.raises(ExperimentError):
            run_growth_sweep(
                "BASELINE",
                sizes=(80,),
                config=FAST,
                num_origins=1,
                origin_batch_size=0,
            )


class TestSweepUnits:
    def test_split_origins_contiguous_and_complete(self):
        origins = [1, 2, 3, 4, 5, 6, 7]
        batches = split_origins(origins, 3)
        assert batches == [[1, 2, 3], [4, 5], [6, 7]]
        assert split_origins(origins, 1) == [origins]
        # More batches than origins: trailing batches are empty but legal.
        assert split_origins([1], 3) == [[1], [], []]

    def test_unit_is_picklable_and_deterministic(self):
        import pickle

        unit = SweepUnit(
            scenario="BASELINE",
            n=80,
            num_origins=2,
            batch_index=0,
            num_batches=1,
            seed=1,
            config=FAST,
            scenario_kwargs=(),
        )
        clone = pickle.loads(pickle.dumps(unit))
        a = execute_sweep_unit(unit)
        b = execute_sweep_unit(clone)
        assert a.origins == b.origins
        assert a.raw.events == b.raw.events
        assert a.raw.total_updates == b.raw.total_updates
        assert a.measured_messages == b.measured_messages

    def test_unit_batch_index_validated(self):
        with pytest.raises(ExperimentError):
            SweepUnit(
                scenario="BASELINE",
                n=80,
                num_origins=2,
                batch_index=2,
                num_batches=2,
                seed=1,
                config=FAST,
                scenario_kwargs=(),
            )


class TestComparison:
    def test_multiple_scenarios(self):
        results = run_scenario_comparison(
            ["BASELINE", "TREE"], sizes=(80,), config=FAST, num_origins=2, seed=1
        )
        assert set(results) == {"BASELINE", "TREE"}
        assert results["TREE"].u_series(NodeType.T)[0] == pytest.approx(2.0)


class TestSweepResultValidation:
    def test_length_mismatch_rejected(self):
        sweep = run_growth_sweep("BASELINE", sizes=(80,), config=FAST, num_origins=1)
        with pytest.raises(ExperimentError):
            SweepResult(
                scenario="X", sizes=[80, 160], stats=sweep.stats, config=FAST
            )


class TestResolveJobs:
    def test_none_is_serial(self):
        assert resolve_jobs(None) == 1

    def test_zero_is_auto(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 6)
        assert resolve_jobs(0) == 6

    def test_zero_with_unknown_cpu_count_falls_back_to_one(self, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: None)
        assert resolve_jobs(0) == 1

    def test_positive_passes_through(self):
        assert resolve_jobs(3) == 3

    @pytest.mark.parametrize("bad", [-1, -8])
    def test_negative_rejected(self, bad):
        with pytest.raises(ExperimentError, match="jobs must be >= 0"):
            resolve_jobs(bad)

    def test_jobs_zero_sweep_matches_serial(self, monkeypatch):
        # jobs=0 = one worker per CPU; clamp the auto value so the test
        # stays cheap while still exercising the parallel path.
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
        serial = run_growth_sweep(
            "BASELINE", sizes=SIZES, config=FAST, num_origins=2, seed=1
        )
        auto = run_growth_sweep(
            "BASELINE", sizes=SIZES, config=FAST, num_origins=2, seed=1, jobs=0
        )
        assert measured_numbers(auto) == measured_numbers(serial)
