"""Tests for growth sweeps."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.sweep import SweepResult, run_growth_sweep, run_scenario_comparison
from repro.errors import ExperimentError
from repro.topology.types import NodeType, Relationship

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.01)
SIZES = (80, 160)


class TestRunGrowthSweep:
    def test_basic_sweep(self):
        sweep = run_growth_sweep(
            "BASELINE", sizes=SIZES, config=FAST, num_origins=2, seed=1
        )
        assert sweep.sizes == list(SIZES)
        assert len(sweep.stats) == 2
        assert sweep.scenario == "BASELINE"
        assert all(s.n == n for s, n in zip(sweep.stats, SIZES))

    def test_series_extractors(self):
        sweep = run_growth_sweep(
            "BASELINE", sizes=SIZES, config=FAST, num_origins=2, seed=1
        )
        u = sweep.u_series(NodeType.T)
        assert len(u) == 2 and all(v > 0 for v in u)
        assert len(sweep.m_series(NodeType.T, Relationship.CUSTOMER)) == 2
        assert len(sweep.q_series(NodeType.M, Relationship.PROVIDER)) == 2
        assert len(sweep.e_series(NodeType.M, Relationship.PROVIDER)) == 2
        rel = sweep.relative_u_series(NodeType.T)
        assert rel[0] == pytest.approx(1.0)

    def test_stats_at(self):
        sweep = run_growth_sweep(
            "BASELINE", sizes=SIZES, config=FAST, num_origins=2, seed=1
        )
        assert sweep.stats_at(80).n == 80
        with pytest.raises(ExperimentError):
            sweep.stats_at(999)

    def test_empty_sizes_rejected(self):
        with pytest.raises(ExperimentError):
            run_growth_sweep("BASELINE", sizes=(), config=FAST)

    def test_progress_callback(self):
        seen = []
        run_growth_sweep(
            "BASELINE",
            sizes=(80,),
            config=FAST,
            num_origins=1,
            seed=1,
            progress=lambda scenario, n, stats: seen.append((scenario, n)),
        )
        assert seen == [("BASELINE", 80)]

    def test_scenario_kwargs_forwarded(self):
        sweep = run_growth_sweep(
            "STATIC-MIDDLE",
            sizes=(80, 160),
            config=FAST,
            num_origins=1,
            seed=1,
            scenario_kwargs={"reference_n": 80},
        )
        # transit population frozen at its n=80 value
        small = sweep.stats_at(80)
        large = sweep.stats_at(160)
        assert small.per_type[NodeType.M].node_count == large.per_type[
            NodeType.M
        ].node_count

    def test_reproducibility(self):
        a = run_growth_sweep("BASELINE", sizes=(80,), config=FAST, num_origins=2, seed=5)
        b = run_growth_sweep("BASELINE", sizes=(80,), config=FAST, num_origins=2, seed=5)
        assert a.u_series(NodeType.T) == b.u_series(NodeType.T)


class TestComparison:
    def test_multiple_scenarios(self):
        results = run_scenario_comparison(
            ["BASELINE", "TREE"], sizes=(80,), config=FAST, num_origins=2, seed=1
        )
        assert set(results) == {"BASELINE", "TREE"}
        assert results["TREE"].u_series(NodeType.T)[0] == pytest.approx(2.0)


class TestSweepResultValidation:
    def test_length_mismatch_rejected(self):
        sweep = run_growth_sweep("BASELINE", sizes=(80,), config=FAST, num_origins=1)
        with pytest.raises(ExperimentError):
            SweepResult(
                scenario="X", sizes=[80, 160], stats=sweep.stats, config=FAST
            )
