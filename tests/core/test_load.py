"""Tests for processing-load analysis."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.load import load_report, run_load_probe
from repro.sim.network import SimNetwork
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.01)


class TestLoadReport:
    def test_counters_populated(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        network.originate(4, 0)
        network.run_to_convergence()
        report = load_report(network)
        assert report.n == 5
        assert report.simulated_seconds > 0
        t_load = report.per_type[NodeType.T]
        assert t_load.mean_processed > 0
        assert t_load.mean_busy_time > 0
        assert t_load.max_queue_length >= 1

    def test_busiest_node_consistent(self, diamond, fast_config):
        network = SimNetwork(diamond, fast_config, seed=1)
        network.originate(4, 0)
        network.run_to_convergence()
        report = load_report(network)
        for load in report.per_type.values():
            node = network.node(load.busiest_node)
            assert node.processed_count == load.busiest_processed
            assert node.node_type is load.node_type

    def test_utilization_bounded(self, small_baseline):
        report = run_load_probe(small_baseline, FAST, num_origins=3, seed=1)
        for node_type in report.per_type:
            assert 0.0 <= report.utilization(node_type) <= 1.0

    def test_core_processes_more_than_edge(self, small_baseline):
        """T nodes sit on many paths: their processing load must exceed
        C stubs' (the paper's core-router upgrade concern)."""
        report = run_load_probe(small_baseline, FAST, num_origins=4, seed=2)
        assert (
            report.per_type[NodeType.T].mean_processed
            > report.per_type[NodeType.C].mean_processed
        )

    def test_busy_time_tracks_processed_count(self, small_baseline):
        report = run_load_probe(small_baseline, FAST, num_origins=2, seed=3)
        for load in report.per_type.values():
            if load.mean_processed > 0:
                mean_service = load.mean_busy_time / load.mean_processed
                # uniform(0, max) services average max/2
                assert 0.0 < mean_service < FAST.processing_time_max
