"""Tests for path-exploration measurement."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.exploration import (
    MINIMUM_CHANGES,
    exploration_comparison,
    measure_path_exploration,
)
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.scenarios import scenario_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.005)


class TestMeasurement:
    def test_chain_has_no_exploration(self, chain):
        stats = measure_path_exploration(chain, FAST, num_origins=1, seed=0)
        # single-path topology: exactly lose + regain
        assert stats.changes_per_type[NodeType.T] == pytest.approx(MINIMUM_CHANGES)
        assert stats.exploration_excess(NodeType.T) == pytest.approx(0.0)

    def test_tree_topology_has_no_exploration(self):
        graph = generate_topology(scenario_params("TREE", 200), seed=1)
        stats = measure_path_exploration(graph, FAST, num_origins=3, seed=1)
        assert stats.exploration_excess(NodeType.T) == pytest.approx(0.0, abs=0.05)

    def test_no_wrate_near_minimum(self, small_baseline):
        stats = measure_path_exploration(
            small_baseline, FAST.replace(wrate=False), num_origins=3, seed=2
        )
        # Decision-level changes exceed the 2-change minimum a little even
        # under NO-WRATE (a node may briefly install a longer route while
        # announcements trickle in), but the out-queue invalidation keeps
        # that churn local — message-level e stays ~2 (see test_cevent).
        assert stats.changes_per_type[NodeType.M] < MINIMUM_CHANGES + 1.0

    def test_reproducible(self, small_baseline):
        a = measure_path_exploration(small_baseline, FAST, num_origins=2, seed=3)
        b = measure_path_exploration(small_baseline, FAST, num_origins=2, seed=3)
        assert a.changes_per_type == b.changes_per_type


class TestWrateComparison:
    def test_wrate_explores_more(self, small_baseline):
        results = exploration_comparison(
            small_baseline, FAST, num_origins=3, seed=4
        )
        for node_type in (NodeType.M, NodeType.C):
            assert (
                results["WRATE"].changes_per_type[node_type]
                >= results["NO-WRATE"].changes_per_type[node_type]
            )
        # and strictly more somewhere: path exploration actually happened
        assert any(
            results["WRATE"].changes_per_type[t]
            > results["NO-WRATE"].changes_per_type[t] + 0.05
            for t in results["WRATE"].changes_per_type
        )
