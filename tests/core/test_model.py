"""Tests for the analytical Eq.-1 model."""

import pytest

from repro.core.factors import TypeFactors
from repro.core.model import (
    FactorScaling,
    attribute_growth,
    decomposition_residual,
    dominant_term,
    predict_updates,
)
from repro.topology.types import NodeType, Relationship

CUST = Relationship.CUSTOMER
PEER = Relationship.PEER
PROV = Relationship.PROVIDER


def make_factors(m, q, e):
    u_by_rel = {rel: m[rel] * q[rel] * e[rel] for rel in (CUST, PEER, PROV)}
    return TypeFactors(
        node_type=NodeType.T,
        node_count=5,
        events=10,
        u_total=sum(u_by_rel.values()),
        u_by_rel=u_by_rel,
        m_by_rel=dict(m),
        q_by_rel=dict(q),
        e_by_rel=dict(e),
        per_node_updates=[sum(u_by_rel.values())] * 5,
    )


BASE = make_factors(
    m={CUST: 10.0, PEER: 4.0, PROV: 0.0},
    q={CUST: 0.1, PEER: 0.5, PROV: 0.0},
    e={CUST: 2.0, PEER: 2.0, PROV: 0.0},
)


class TestPrediction:
    def test_predict_matches_u(self):
        assert predict_updates(BASE) == pytest.approx(BASE.u_total)
        assert decomposition_residual(BASE) == pytest.approx(0.0)

    def test_scaling_multiplies_terms(self):
        scaling = FactorScaling(m_scale={CUST: 2.0})
        predicted = predict_updates(BASE, scaling)
        # customer term doubles: 2 + 4 -> 4 + 4
        assert predicted == pytest.approx(8.0)

    def test_q_scaling_capped_at_one(self):
        scaling = FactorScaling(q_scale={PEER: 10.0})
        predicted = predict_updates(BASE, scaling)
        # q_peer would become 5.0; capped at 1.0 -> peer term 4*1*2 = 8
        assert predicted == pytest.approx(2.0 + 8.0)

    def test_e_scaling(self):
        scaling = FactorScaling(e_scale={CUST: 3.0, PEER: 3.0})
        assert predict_updates(BASE, scaling) == pytest.approx(3 * BASE.u_total)


class TestDominantTerm:
    def test_peer_dominates_base(self):
        assert dominant_term(BASE) is PEER

    def test_provider_dominates_m_style_factors(self):
        m_factors = make_factors(
            m={CUST: 1.0, PEER: 1.0, PROV: 3.0},
            q={CUST: 0.01, PEER: 0.01, PROV: 1.0},
            e={CUST: 2.0, PEER: 2.0, PROV: 2.0},
        )
        assert dominant_term(m_factors) is PROV


class TestAttributeGrowth:
    def test_ratios_multiply_to_u_ratio(self):
        larger = make_factors(
            m={CUST: 30.0, PEER: 5.0, PROV: 0.0},
            q={CUST: 0.15, PEER: 0.7, PROV: 0.0},
            e={CUST: 2.1, PEER: 2.2, PROV: 0.0},
        )
        growth = attribute_growth(BASE, larger, CUST)
        assert growth["m_ratio"] == pytest.approx(3.0)
        assert growth["q_ratio"] == pytest.approx(1.5)
        assert growth["e_ratio"] == pytest.approx(1.05)
        assert growth["u_ratio"] == pytest.approx(3.0 * 1.5 * 1.05)

    def test_zero_base_gives_inf(self):
        growth = attribute_growth(BASE, BASE, PROV)
        assert growth["u_ratio"] == float("inf")
