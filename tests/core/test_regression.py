"""Tests for the regression utilities."""

import pytest

from repro.core.regression import (
    fit_linear,
    fit_polynomial,
    fit_quadratic,
    growth_classification,
    log_log_exponent,
    relative_increase,
)
from repro.errors import ParameterError


class TestPolynomialFits:
    def test_perfect_linear(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [3.0, 5.0, 7.0, 9.0]
        fit = fit_linear(x, y)
        assert fit.coefficients[0] == pytest.approx(2.0)
        assert fit.coefficients[1] == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.predict(5.0) == pytest.approx(11.0)

    def test_perfect_quadratic(self):
        x = [1.0, 2.0, 3.0, 4.0]
        y = [xi**2 for xi in x]
        fit = fit_quadratic(x, y)
        assert fit.r_squared == pytest.approx(1.0)
        assert fit.coefficients[0] == pytest.approx(1.0, abs=1e-8)

    def test_quadratic_beats_linear_on_quadratic_data(self):
        x = list(range(1, 11))
        y = [0.5 * xi**2 + xi for xi in x]
        assert fit_quadratic(x, y).r_squared > fit_linear(x, y).r_squared

    def test_r_squared_low_for_noise(self):
        x = list(range(8))
        y = [1.0, 9.0, 2.0, 8.0, 1.0, 9.0, 2.0, 8.0]
        assert fit_linear(x, y).r_squared < 0.3

    def test_length_mismatch(self):
        with pytest.raises(ParameterError):
            fit_linear([1, 2], [1])

    def test_insufficient_points(self):
        with pytest.raises(ParameterError):
            fit_quadratic([1, 2], [1, 2])

    def test_constant_series_r_squared_is_one(self):
        fit = fit_linear([1, 2, 3], [5.0, 5.0, 5.0])
        assert fit.r_squared == pytest.approx(1.0)


class TestRelativeIncrease:
    def test_normalizes_to_first(self):
        assert relative_increase([2.0, 4.0, 6.0]) == [1.0, 2.0, 3.0]

    def test_empty(self):
        assert relative_increase([]) == []

    def test_zero_base_rejected(self):
        with pytest.raises(ParameterError):
            relative_increase([0.0, 1.0])


class TestGrowthClassification:
    def test_linear(self):
        x = [100.0, 200.0, 400.0, 800.0]
        assert growth_classification(x, [2 * v for v in x]) == "linear"

    def test_superlinear(self):
        x = [100.0, 200.0, 400.0, 800.0]
        assert growth_classification(x, [v**1.5 for v in x]) == "superlinear"

    def test_sublinear(self):
        x = [100.0, 200.0, 400.0, 800.0]
        assert growth_classification(x, [v**0.5 for v in x]) == "sublinear"

    def test_constant(self):
        x = [100.0, 200.0, 400.0]
        assert growth_classification(x, [5.0, 5.01, 5.0]) == "constant"

    def test_rejects_nonpositive(self):
        with pytest.raises(ParameterError):
            growth_classification([1.0, 2.0], [0.0, 1.0])

    def test_log_log_exponent(self):
        x = [10.0, 100.0, 1000.0]
        y = [v**2 for v in x]
        assert log_log_exponent(x, y) == pytest.approx(2.0, abs=1e-9)
