"""Prefix-token agnosticism of the single-prefix C-event machinery.

The C-event sweep migrated from bare-int prefixes to interned ``/32``
host prefixes; because host prefixes sort exactly like the ints they
replaced, fixed-seed measurements must be unaffected — and identical
under either RIB backend.
"""

import dataclasses

from repro.bgp.config import BGPConfig
from repro.core.cevent import run_c_event_experiment
from repro.prefix.prefix import Prefix
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params

FAST = dict(link_delay=0.001, processing_time_max=0.01)


def measure(backend):
    graph = generate_topology(baseline_params(60), seed=13)
    config = BGPConfig(mrai=2.0, rib_backend=backend, **FAST)
    return run_c_event_experiment(graph, config, num_origins=6, seed=13)


def comparable(stats):
    """Everything measured, minus config (the backends differ) and wall clock."""
    return {
        "origins": stats.origins,
        "per_type": stats.per_type,
        "down": stats.down_updates_per_type,
        "up": stats.up_updates_per_type,
        "down_convergence": stats.mean_down_convergence,
        "up_convergence": stats.mean_up_convergence,
        "messages": stats.measured_messages,
    }


class TestCEventTokens:
    def test_backends_measure_identically(self):
        assert comparable(measure("dict")) == comparable(measure("radix"))

    def test_config_carries_the_backend(self):
        stats = measure("radix")
        assert stats.config.rib_backend == "radix"
        assert dataclasses.replace(stats.config, rib_backend="dict") == measure(
            "dict"
        ).config

    def test_origin_prefixes_are_host_prefixes(self):
        from repro.prefix.prefix import host_prefix

        # The per-event token is the /32 of the event index: interned,
        # distinct, and int-sort-compatible.
        tokens = [host_prefix(i) for i in range(6)]
        assert all(isinstance(t, Prefix) and t.length == 32 for t in tokens)
        assert tokens == sorted(tokens)
