"""Tests for convergence-time profiles."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.convergence import convergence_profile

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.005)


class TestConvergenceProfile:
    def test_per_event_lists(self, small_baseline):
        profile = convergence_profile(
            small_baseline, FAST, num_origins=4, seed=1
        )
        assert len(profile.down_times) == 4
        assert len(profile.up_times) == 4
        assert all(t > 0 for t in profile.down_times + profile.up_times)

    def test_summaries(self, small_baseline):
        profile = convergence_profile(
            small_baseline, FAST, num_origins=4, seed=1
        )
        down = profile.down_summary()
        assert down.minimum <= down.median <= down.maximum

    def test_wrate_slows_down_phase(self, small_baseline):
        no_wrate = convergence_profile(
            small_baseline, FAST.replace(wrate=False), num_origins=3, seed=2
        )
        wrate = convergence_profile(
            small_baseline, FAST.replace(wrate=True), num_origins=3, seed=2
        )
        assert (
            wrate.down_summary().median
            > 2.0 * no_wrate.down_summary().median
        )

    def test_up_times_quantized_by_mrai(self, small_baseline):
        """Delay-first: UP convergence is a multiple of ~MRAI hops; with a
        1s timer every event needs at least a couple of seconds."""
        profile = convergence_profile(
            small_baseline, FAST, num_origins=3, seed=3
        )
        assert min(profile.up_times) > 1.0

    def test_reproducible(self, small_baseline):
        a = convergence_profile(small_baseline, FAST, num_origins=2, seed=4)
        b = convergence_profile(small_baseline, FAST, num_origins=2, seed=4)
        assert a.down_times == b.down_times
        assert a.up_times == b.up_times
