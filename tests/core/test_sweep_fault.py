"""Fault-tolerant parallel sweeps: worker death must not lose the sweep."""

import os
import threading
import time
from pathlib import Path

import pytest

from repro.bgp.config import BGPConfig
from repro.core.sweep import (
    FAULT_INJECT_ENV,
    FAULT_MODE_ENV,
    SweepUnit,
    _run_unit,
    execute_sweep_unit,
    maybe_inject_fault,
    run_growth_sweep,
)
from repro.errors import ExperimentError

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)
SWEEP_KW = dict(sizes=[60, 80], config=FAST, num_origins=4, seed=9)

#: directory for _slow_run_unit's once-per-unit sleep markers
_SLOW_DIR_ENV = "REPRO_TEST_SLOW_DIR"

_real_run_unit = _run_unit


def _slow_run_unit(unit, checkpoint_dir, checkpoint_every):
    """``_run_unit`` that sleeps once per unit before executing it.

    Module-level so the process pool can pickle it by reference when a
    test installs it as ``repro.core.sweep._run_unit`` (forked workers
    inherit the patch).  The sleep is disarmed by a marker file, so the
    in-process serial retry of a timed-out unit runs at full speed.  The
    n=60 unit sleeps just past the test's ``unit_timeout`` (its worker
    finishes while the collector still waits on n=80), the n=80 unit
    sleeps far past it (its worker dies with the pool).
    """
    slow_dir = os.environ.get(_SLOW_DIR_ENV)
    if slow_dir:
        marker = Path(slow_dir) / f"slept-{unit.n}-{unit.batch_index}"
        if not marker.exists():
            marker.write_text("", encoding="utf-8")
            time.sleep(1.5 if unit.n == 60 else 3.0)
    return _real_run_unit(unit, checkpoint_dir, checkpoint_every)


def _series(result):
    """Every measured number of a sweep (wall clock excluded)."""
    return [
        (
            stats.n,
            stats.origins,
            stats.down_updates_per_type,
            stats.up_updates_per_type,
            stats.mean_down_convergence,
            stats.mean_up_convergence,
            stats.measured_messages,
            {t: f.u_by_rel for t, f in stats.per_type.items()},
        )
        for stats in result.stats
    ]


@pytest.fixture(scope="module")
def serial_sweep():
    return run_growth_sweep("baseline", **SWEEP_KW)


class TestWorkerDeathRecovery:
    """A worker killed mid-unit breaks the pool; the sweep must survive."""

    @pytest.mark.parametrize("with_checkpoints", [False, True], ids=["plain", "ckpt"])
    def test_sweep_survives_worker_death(
        self, serial_sweep, tmp_path, monkeypatch, with_checkpoints
    ):
        marker = tmp_path / "died.marker"
        # Kill the process running the n=80 unit after its first event.
        monkeypatch.setenv(FAULT_INJECT_ENV, f"BASELINE:80:0:1:{marker}")
        result = run_growth_sweep(
            "baseline",
            jobs=2,
            checkpoint_dir=(tmp_path / "ck") if with_checkpoints else None,
            **SWEEP_KW,
        )
        assert marker.exists(), "the fault should actually have fired"
        assert _series(result) == _series(serial_sweep)
        if with_checkpoints:
            # The serial retry resumed, completed, and cleaned up.
            assert list((tmp_path / "ck").glob("unit-*.json")) == []

    def test_unit_errors_still_propagate(self, monkeypatch):
        # Fault tolerance covers worker *death*, not simulation errors.
        with pytest.raises(ExperimentError):
            run_growth_sweep("baseline", sizes=[], config=FAST)


class TestFaultInjectionHook:
    def _unit(self):
        return SweepUnit(
            scenario="baseline",
            n=60,
            num_origins=2,
            batch_index=0,
            num_batches=1,
            seed=9,
            config=FAST,
            scenario_kwargs=(),
        )

    def test_noop_without_env(self, monkeypatch):
        monkeypatch.delenv(FAULT_INJECT_ENV, raising=False)
        maybe_inject_fault(self._unit(), 0)  # must not raise or exit

    def test_noop_for_other_unit(self, tmp_path, monkeypatch):
        marker = tmp_path / "m"
        monkeypatch.setenv(FAULT_INJECT_ENV, f"BASELINE:999:0:0:{marker}")
        maybe_inject_fault(self._unit(), 0)
        assert not marker.exists()

    def test_disarmed_by_marker(self, tmp_path, monkeypatch):
        marker = tmp_path / "m"
        marker.write_text("already died\n", encoding="utf-8")
        monkeypatch.setenv(FAULT_INJECT_ENV, f"BASELINE:60:0:0:{marker}")
        maybe_inject_fault(self._unit(), 0)  # survives: die-once semantics
        result = execute_sweep_unit(self._unit())
        assert result.raw.events == 2

    def test_malformed_spec_rejected(self, monkeypatch):
        monkeypatch.setenv(FAULT_INJECT_ENV, "nonsense")
        with pytest.raises(ExperimentError, match="malformed"):
            maybe_inject_fault(self._unit(), 0)


class TestHungWorkerTimeout:
    """A hung worker must trip ``unit_timeout``, not stall the sweep."""

    def test_sweep_survives_hung_worker(self, serial_sweep, tmp_path, monkeypatch):
        marker = tmp_path / "hung.marker"
        # The process running the n=80 unit sleeps far past the timeout
        # after its first event; the collector must give up on it and
        # re-run the unit serially (the marker disarms the fault there).
        monkeypatch.setenv(FAULT_INJECT_ENV, f"BASELINE:80:0:1:{marker}")
        monkeypatch.setenv(FAULT_MODE_ENV, "sleep:300")
        result = run_growth_sweep(
            "baseline",
            jobs=2,
            unit_timeout=5.0,
            checkpoint_dir=tmp_path / "ck",
            **SWEEP_KW,
        )
        assert marker.exists(), "the hang should actually have fired"
        assert _series(result) == _series(serial_sweep)
        # The serial retry resumed from checkpoint, completed, cleaned up.
        assert list((tmp_path / "ck").glob("unit-*.json")) == []

    def test_generous_timeout_changes_nothing(self, serial_sweep, monkeypatch):
        monkeypatch.delenv(FAULT_INJECT_ENV, raising=False)
        result = run_growth_sweep(
            "baseline", jobs=2, unit_timeout=600.0, **SWEEP_KW
        )
        assert _series(result) == _series(serial_sweep)

    def test_timed_out_unit_notifies_exactly_once(
        self, serial_sweep, tmp_path, monkeypatch
    ):
        # The double-notification race: the n=60 unit sleeps past
        # unit_timeout, so the collector gives up on it — but its worker
        # finishes shortly after (while the collector still waits on the
        # slower n=80 future), resolving the future and firing the
        # done-callback.  The serial retry then completes the unit a
        # second time.  on_unit_done must still fire exactly once per
        # unit: progress counts and API event streams rely on it.
        import repro.core.sweep as sweep_mod

        monkeypatch.setenv(_SLOW_DIR_ENV, str(tmp_path))
        monkeypatch.setattr(sweep_mod, "_run_unit", _slow_run_unit)
        seen = []
        lock = threading.Lock()

        def record(unit):
            with lock:
                seen.append((unit.n, unit.batch_index))

        result = run_growth_sweep(
            "baseline",
            jobs=2,
            unit_timeout=1.0,
            on_unit_done=record,
            **SWEEP_KW,
        )
        assert (tmp_path / "slept-60-0").exists(), "the slow unit never slept"
        assert _series(result) == _series(serial_sweep)
        assert sorted(seen) == [(60, 0), (80, 0)], (
            f"each unit must be notified exactly once, got {seen}"
        )


class TestFaultMode:
    def _unit(self):
        return SweepUnit(
            scenario="baseline",
            n=60,
            num_origins=2,
            batch_index=0,
            num_batches=1,
            seed=9,
            config=FAST,
            scenario_kwargs=(),
        )

    def test_sleep_mode_hangs_then_disarms(self, tmp_path, monkeypatch):
        marker = tmp_path / "m"
        monkeypatch.setenv(FAULT_INJECT_ENV, f"BASELINE:60:0:0:{marker}")
        monkeypatch.setenv(FAULT_MODE_ENV, "sleep:0.01")
        maybe_inject_fault(self._unit(), 0)  # sleeps briefly, returns
        assert marker.exists()
        maybe_inject_fault(self._unit(), 0)  # marker set: no second fault

    @pytest.mark.parametrize("bad", ["sleep:", "sleep:abc", "hang", "exit:5"])
    def test_malformed_mode_rejected(self, bad, tmp_path, monkeypatch):
        marker = tmp_path / "m"
        monkeypatch.setenv(FAULT_INJECT_ENV, f"OTHER:999:0:0:{marker}")
        monkeypatch.setenv(FAULT_MODE_ENV, bad)
        # Validated eagerly, even though the unit does not match the spec.
        with pytest.raises(ExperimentError, match="malformed"):
            maybe_inject_fault(self._unit(), 0)
