"""Tests for continuous churn workloads."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.workload import (
    WorkloadSpec,
    default_monitors,
    generate_poisson_workload,
    run_workload,
)
from repro.errors import ParameterError
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.005)
SPEC = WorkloadSpec(duration=200.0, event_rate=0.1, mean_downtime=10.0)


class TestSpecValidation:
    def test_positive_duration(self):
        with pytest.raises(ParameterError):
            WorkloadSpec(duration=0.0)

    def test_positive_rate(self):
        with pytest.raises(ParameterError):
            WorkloadSpec(event_rate=0.0)

    def test_positive_downtime(self):
        with pytest.raises(ParameterError):
            WorkloadSpec(mean_downtime=-1.0)


class TestScheduleGeneration:
    def test_deterministic(self, small_baseline):
        a = generate_poisson_workload(small_baseline, SPEC, seed=1)
        b = generate_poisson_workload(small_baseline, SPEC, seed=1)
        assert a == b
        assert a != generate_poisson_workload(small_baseline, SPEC, seed=2)

    def test_event_count_near_expectation(self, small_baseline):
        spec = WorkloadSpec(
            duration=5000.0, event_rate=0.1, mean_downtime=10.0,
            storm_probability=0.0,
        )
        events = generate_poisson_workload(small_baseline, spec, seed=3)
        assert 400 < len(events) < 600  # expectation 500

    def test_storms_add_clustered_flaps(self, small_baseline):
        calm = WorkloadSpec(
            duration=5000.0, event_rate=0.05, mean_downtime=10.0,
            storm_probability=0.0,
        )
        stormy = WorkloadSpec(
            duration=5000.0, event_rate=0.05, mean_downtime=10.0,
            storm_probability=0.5, storm_size_mean=6.0, storm_gap=30.0,
        )
        calm_events = generate_poisson_workload(small_baseline, calm, seed=3)
        storm_events = generate_poisson_workload(small_baseline, stormy, seed=3)
        assert len(storm_events) > 1.5 * len(calm_events)
        # storm flaps hit the same prefix repeatedly
        by_origin = {}
        for event in storm_events:
            by_origin[event.origin] = by_origin.get(event.origin, 0) + 1
        assert max(by_origin.values()) >= 5

    def test_times_within_duration_and_sorted(self, small_baseline):
        events = generate_poisson_workload(small_baseline, SPEC, seed=4)
        times = [e.time for e in events]
        assert times == sorted(times)
        assert all(0 < t < SPEC.duration for t in times)

    def test_origins_are_stubs_with_stable_prefixes(self, small_baseline):
        events = generate_poisson_workload(small_baseline, SPEC, seed=4)
        stubs = set(small_baseline.nodes_of_type(NodeType.C))
        prefix_of = {}
        for event in events:
            assert event.origin in stubs
            assert event.downtime > 0
            prefix_of.setdefault(event.origin, event.prefix)
            assert prefix_of[event.origin] == event.prefix

    def test_origin_pool_limits_participants(self, small_baseline):
        spec = WorkloadSpec(duration=500.0, event_rate=0.2, origin_pool=3,
                            mean_downtime=10.0)
        events = generate_poisson_workload(small_baseline, spec, seed=5)
        assert len({e.origin for e in events}) <= 3


class TestRunWorkload:
    def test_basic_run(self, small_baseline):
        result = run_workload(small_baseline, SPEC, FAST, seed=1)
        assert result.events_executed > 0
        assert result.total_updates > 0
        assert result.measured_duration >= SPEC.duration * 0.5
        assert len(result.trace) > 0

    def test_monitor_sees_traffic(self, small_baseline):
        result = run_workload(small_baseline, SPEC, FAST, seed=1)
        t_monitor = result.monitors[0]
        assert result.monitor_rate(t_monitor) > 0
        report = result.burstiness(t_monitor, bin_width=20.0)
        assert report.peak_rate >= report.mean_rate

    def test_skipped_plus_executed_covers_schedule(self, small_baseline):
        events = generate_poisson_workload(small_baseline, SPEC, seed=1)
        result = run_workload(small_baseline, SPEC, FAST, seed=1)
        assert result.events_executed + result.events_skipped == len(events)

    def test_custom_monitors(self, small_baseline):
        t_node = small_baseline.nodes_of_type(NodeType.T)[0]
        result = run_workload(
            small_baseline, SPEC, FAST, monitors=[t_node], seed=2
        )
        assert result.monitors == [t_node]

    def test_deterministic(self, small_baseline):
        a = run_workload(small_baseline, SPEC, FAST, seed=7)
        b = run_workload(small_baseline, SPEC, FAST, seed=7)
        assert a.total_updates == b.total_updates
        assert a.events_executed == b.events_executed


class TestDefaultMonitors:
    def test_picks_highest_degree_transit(self, small_baseline):
        monitors = default_monitors(small_baseline)
        assert 1 <= len(monitors) <= 2
        t_nodes = small_baseline.nodes_of_type(NodeType.T)
        assert monitors[0] in t_nodes
        assert small_baseline.degree(monitors[0]) == max(
            small_baseline.degree(t) for t in t_nodes
        )
