"""Tests for the multi-prefix churn driver.

The load-bearing check is backend equivalence: the same fixed-seed
workload run under ``rib_backend="dict"`` and ``"radix"`` must produce
byte-identical routing state (canonical Loc-RIB digests) and identical
event/decision accounting — the trie is an indexing change, never a
behavior change.
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.prefix_churn import (
    build_allocation,
    default_prefix_origins,
    run_prefix_churn,
)
from repro.errors import ExperimentError
from repro.prefix.workload import PrefixChurnSpec, allocate_prefixes
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params

FAST = dict(link_delay=0.001, processing_time_max=0.01)

SPEC = PrefixChurnSpec(
    duration=200.0,
    event_rate=0.05,
    mean_downtime=20.0,
    deaggregation_probability=0.2,
)


@pytest.fixture(scope="module")
def graph():
    return generate_topology(baseline_params(80), seed=17)


@pytest.fixture(scope="module")
def allocation(graph):
    return build_allocation(graph, 24, num_origins=6, seed=17)


def run(graph, allocation, backend, *, spec=SPEC, seed=17):
    config = BGPConfig(mrai=2.0, rib_backend=backend, **FAST)
    return run_prefix_churn(graph, allocation, spec, config, seed=seed)


class TestBackendEquivalence:
    def test_dict_and_radix_reach_identical_state(self, graph, allocation):
        reference = run(graph, allocation, "dict")
        radix = run(graph, allocation, "radix")
        assert radix.loc_rib_digest == reference.loc_rib_digest
        assert radix.events_executed == reference.events_executed
        assert radix.events_absorbed == reference.events_absorbed
        assert radix.total_updates == reference.total_updates
        assert radix.measured_duration == reference.measured_duration
        assert radix.decisions_run == reference.decisions_run
        assert radix.decisions_skipped == reference.decisions_skipped
        assert radix.mean_table_size == reference.mean_table_size

    def test_digest_is_sensitive_to_routing_state(self, graph, allocation):
        a = run(graph, allocation, "dict")
        bigger = build_allocation(graph, 30, num_origins=6, seed=17)
        b = run(graph, bigger, "dict")
        assert a.loc_rib_digest != b.loc_rib_digest


class TestMeasurement:
    def test_incremental_decisions_dominate(self, graph, allocation):
        result = run(graph, allocation, "radix")
        assert result.events_executed > 0
        assert result.decisions_run > 0
        # The per-prefix dirty set is the point of the subsystem: one
        # flapping prefix must not re-decide the other 23.
        assert result.decisions_skipped > 10 * result.decisions_run

    def test_tables_track_the_allocation(self, graph, allocation):
        result = run(graph, allocation, "radix")
        # Deaggregations may leave a few tables one entry above P, but
        # every node must carry roughly the allocated table.
        assert result.num_prefixes == 24
        assert result.mean_table_size >= 0.9 * result.num_prefixes
        assert result.max_table_size >= result.num_prefixes

    def test_churn_rate_normalizes_by_measured_duration(self, graph, allocation):
        result = run(graph, allocation, "radix")
        assert result.measured_duration > 0
        assert result.churn_rate == pytest.approx(
            result.total_updates / result.measured_duration
        )

    def test_deterministic_per_seed(self, graph, allocation):
        a = run(graph, allocation, "dict")
        b = run(graph, allocation, "dict")
        assert a == b


class TestValidation:
    def test_unknown_origin_rejected(self, graph):
        allocation = allocate_prefixes([10**6], 4, seed=1)
        with pytest.raises(ExperimentError, match="not in topology"):
            run_prefix_churn(graph, allocation, SPEC, BGPConfig(**FAST))

    def test_default_origin_sample_is_deterministic(self, graph):
        assert default_prefix_origins(graph, 5, seed=3) == default_prefix_origins(
            graph, 5, seed=3
        )
        assert all(origin in graph for origin in default_prefix_origins(graph, 5))
