"""Tests for the MRAI-value sensitivity sweep."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.mrai_sweep import run_mrai_sweep
from repro.errors import ExperimentError, ParameterError
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.005)


class TestSweep:
    def test_basic_sweep(self, small_baseline):
        sweep = run_mrai_sweep(
            small_baseline,
            values=(0.0, 1.0, 4.0),
            base_config=FAST,
            num_origins=2,
            seed=1,
        )
        assert sweep.values == [0.0, 1.0, 4.0]
        assert len(sweep.u_series(NodeType.T)) == 3
        assert len(sweep.down_convergence_series()) == 3

    def test_larger_mrai_slows_up_convergence(self, small_baseline):
        """Delay-first: announcement convergence scales with the timer."""
        sweep = run_mrai_sweep(
            small_baseline,
            values=(1.0, 8.0),
            base_config=FAST,
            num_origins=2,
            seed=1,
        )
        up = sweep.up_convergence_series()
        assert up[1] > 2.0 * up[0]

    def test_no_wrate_down_convergence_fast_at_any_mrai(self, small_baseline):
        """Withdrawals bypass the timer, so DOWN convergence is timer-free
        in the first order (alternate-path announcements still arm it)."""
        sweep = run_mrai_sweep(
            small_baseline,
            values=(1.0, 8.0),
            base_config=FAST.replace(wrate=False),
            num_origins=2,
            seed=2,
        )
        down = sweep.down_convergence_series()
        up = sweep.up_convergence_series()
        assert down[1] < up[1]

    def test_wrate_down_convergence_scales_with_mrai(self, small_baseline):
        sweep = run_mrai_sweep(
            small_baseline,
            values=(1.0, 8.0),
            base_config=FAST.replace(wrate=True),
            num_origins=2,
            seed=2,
        )
        down = sweep.down_convergence_series()
        assert down[1] > 2.0 * down[0]

    def test_mrai_zero_means_no_rate_limiting(self, small_baseline):
        sweep = run_mrai_sweep(
            small_baseline,
            values=(0.0,),
            base_config=FAST,
            num_origins=2,
            seed=3,
        )
        # without MRAI delays, convergence is dominated by processing time
        assert sweep.up_convergence_series()[0] < 1.0

    def test_stats_at(self, small_baseline):
        sweep = run_mrai_sweep(
            small_baseline, values=(1.0,), base_config=FAST, num_origins=1
        )
        assert sweep.stats_at(1.0).config.mrai == 1.0
        with pytest.raises(ExperimentError):
            sweep.stats_at(99.0)


class TestValidation:
    def test_empty_grid(self, small_baseline):
        with pytest.raises(ParameterError):
            run_mrai_sweep(small_baseline, values=())

    def test_negative_value(self, small_baseline):
        with pytest.raises(ParameterError):
            run_mrai_sweep(small_baseline, values=(-1.0,))
