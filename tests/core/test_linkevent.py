"""Tests for the link-failure event extension."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.linkevent import pick_links, run_link_event_experiment
from repro.errors import ExperimentError
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.01)


class TestPickLinks:
    def test_picks_provider_links_of_origin(self, diamond):
        links = pick_links(diamond, origin=4, how_many=2, seed=1)
        assert set(links) == {(4, 2), (4, 3)}

    def test_caps_at_population(self, diamond):
        assert len(pick_links(diamond, 4, 99, seed=1)) == 2

    def test_origin_without_providers_rejected(self, diamond):
        with pytest.raises(ExperimentError):
            pick_links(diamond, origin=0, how_many=1, seed=1)


class TestLinkEventExperiment:
    def test_basic_run(self, diamond):
        stats = run_link_event_experiment(
            diamond, FAST, origin=4, num_links=2, seed=1
        )
        assert stats.origin == 4
        assert len(stats.links) == 2
        assert stats.u(NodeType.T) > 0
        assert stats.mean_down_convergence > 0
        assert stats.mean_up_convergence >= 0

    def test_explicit_links(self, diamond):
        stats = run_link_event_experiment(
            diamond, FAST, origin=4, links=[(4, 2)], seed=1
        )
        assert stats.links == [(4, 2)]

    def test_invalid_link_rejected(self, diamond):
        with pytest.raises(ExperimentError, match="not a link"):
            run_link_event_experiment(diamond, FAST, origin=4, links=[(4, 1)])

    def test_unknown_origin_rejected(self, diamond):
        with pytest.raises(ExperimentError):
            run_link_event_experiment(diamond, FAST, origin=99, num_links=1)

    def test_network_recovers_after_each_event(self, diamond):
        """After the fail/restore cycle the route must be back."""
        stats = run_link_event_experiment(
            diamond, FAST, origin=4, num_links=2, seed=3
        )
        # a single-provider failure with a backup path should churn less
        # than a full C-event at T nodes (the prefix never fully vanishes
        # globally), but must still generate updates somewhere
        total = sum(stats.u(t) for t in stats.per_type)
        assert total > 0

    def test_failure_with_backup_does_not_blackhole_core(self, small_baseline):
        origin = small_baseline.nodes_of_type(NodeType.C)[0]
        providers = small_baseline.providers_of(origin)
        if len(providers) < 2:
            pytest.skip("sampled origin is single-homed in this instance")
        stats = run_link_event_experiment(
            small_baseline, FAST, origin=origin, links=[(origin, providers[0])], seed=2
        )
        assert stats.u(NodeType.T) >= 0  # runs to completion
