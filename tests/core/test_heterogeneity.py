"""Tests for churn-heterogeneity analysis."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.cevent import run_c_event_experiment
from repro.core.heterogeneity import (
    churn_heterogeneity,
    gini_coefficient,
    lorenz_curve,
    top_share,
)
from repro.errors import ParameterError
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.005)


class TestLorenz:
    def test_uniform_is_diagonal(self):
        points = lorenz_curve([5.0, 5.0, 5.0, 5.0])
        for x, y in points:
            assert y == pytest.approx(x)

    def test_endpoints(self):
        points = lorenz_curve([1.0, 2.0, 3.0])
        assert points[0] == (0.0, 0.0)
        assert points[-1] == (1.0, pytest.approx(1.0))

    def test_curve_below_diagonal(self):
        points = lorenz_curve([1.0, 1.0, 10.0])
        assert all(y <= x + 1e-12 for x, y in points)

    def test_monotone(self):
        points = lorenz_curve([3.0, 1.0, 4.0, 1.0, 5.0])
        ys = [y for _, y in points]
        assert ys == sorted(ys)

    def test_rejects_bad_input(self):
        with pytest.raises(ParameterError):
            lorenz_curve([])
        with pytest.raises(ParameterError):
            lorenz_curve([-1.0, 2.0])
        with pytest.raises(ParameterError):
            lorenz_curve([0.0, 0.0])


class TestGini:
    def test_perfect_equality(self):
        assert gini_coefficient([2.0] * 10) == pytest.approx(0.0, abs=1e-12)

    def test_total_concentration(self):
        values = [0.0] * 99 + [100.0]
        assert gini_coefficient(values) == pytest.approx(0.99, abs=0.01)

    def test_known_value(self):
        # for [1, 3]: G = (3-1)/(2*(3+1)) = 0.25
        assert gini_coefficient([1.0, 3.0]) == pytest.approx(0.25)

    def test_scale_invariant(self):
        values = [1.0, 2.0, 7.0, 4.0]
        assert gini_coefficient(values) == pytest.approx(
            gini_coefficient([10 * v for v in values])
        )


class TestTopShare:
    def test_uniform(self):
        assert top_share([1.0] * 10, 0.10) == pytest.approx(0.1)

    def test_concentrated(self):
        values = [0.1] * 9 + [100.0]
        assert top_share(values, 0.10) > 0.99

    def test_full_fraction(self):
        assert top_share([1.0, 2.0], 1.0) == pytest.approx(1.0)

    def test_invalid_fraction(self):
        with pytest.raises(ParameterError):
            top_share([1.0], 0.0)


class TestChurnHeterogeneity:
    def test_reports_on_real_campaign(self, small_baseline):
        stats = run_c_event_experiment(
            small_baseline, FAST, num_origins=4, seed=1
        )
        reports = churn_heterogeneity(stats)
        assert NodeType.M in reports
        report = reports[NodeType.M]
        assert 0.0 <= report.gini < 1.0
        assert report.top_10_percent_share >= 0.10  # top nodes carry >= mean
        assert report.max_to_mean >= 1.0

    def test_heavy_tail_visible_at_m_nodes(self, small_baseline):
        """Preferential attachment should concentrate churn unevenly."""
        stats = run_c_event_experiment(
            small_baseline, FAST, num_origins=4, seed=1
        )
        report = churn_heterogeneity(stats)[NodeType.M]
        assert report.gini > 0.1
