"""Tests for the steady-state route oracle, and oracle-vs-simulator checks."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.reference import steady_state_routes
from repro.errors import ExperimentError
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.graph import ASGraph
from repro.topology.params import baseline_params
from repro.topology.types import NodeType, Relationship

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.01)


class TestOracle:
    def test_diamond_routes(self, diamond):
        routes = steady_state_routes(diamond, origin=4)
        assert routes[4].category is None and routes[4].length == 0
        assert routes[2].category is Relationship.CUSTOMER and routes[2].length == 1
        assert routes[3].category is Relationship.CUSTOMER and routes[3].length == 1
        assert routes[0].category is Relationship.CUSTOMER and routes[0].length == 2
        assert routes[1].category is Relationship.CUSTOMER and routes[1].length == 2

    def test_peer_route(self):
        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])
        graph.add_node(1, NodeType.T, [0])
        graph.add_node(2, NodeType.C, [0])
        graph.add_peering_link(0, 1)
        graph.add_transit_link(2, 0)
        routes = steady_state_routes(graph, origin=2)
        assert routes[1].category is Relationship.PEER
        assert routes[1].length == 2

    def test_provider_route_chain(self, chain):
        # chain: T0 <- M1 <- M2 <- C3; origin at the TOP customer cone
        routes = steady_state_routes(chain, origin=3)
        assert routes[0].length == 3
        # now originate at the T node: everyone gets provider routes
        routes = steady_state_routes(chain, origin=0)
        assert routes[1].category is Relationship.PROVIDER
        assert routes[3].length == 3

    def test_customer_route_preferred_even_if_longer(self):
        """lpref dominates length in the oracle too."""
        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])
        graph.add_node(1, NodeType.T, [0])
        graph.add_node(2, NodeType.M, [0])
        graph.add_node(3, NodeType.M, [0])
        graph.add_node(4, NodeType.C, [0])
        graph.add_peering_link(0, 1)
        graph.add_transit_link(2, 0)
        graph.add_transit_link(3, 2)
        graph.add_transit_link(4, 3)  # chain of 3 under T0
        graph.add_transit_link(4, 1)  # direct customer of T1
        # T0 sees a 2-hop peer route via T1 and a 3-hop customer route via
        # M2; local preference must win over length.
        routes = steady_state_routes(graph, origin=4)
        assert routes[0].category is Relationship.CUSTOMER
        assert routes[0].length == 3

    def test_unreachable_nodes_absent(self):
        graph = ASGraph()
        graph.add_node(0, NodeType.T, [0])
        graph.add_node(1, NodeType.T, [0])
        graph.add_node(2, NodeType.C, [0])
        graph.add_peering_link(0, 1)
        graph.add_transit_link(2, 0)
        graph.add_node(3, NodeType.M, [0])
        graph.add_transit_link(3, 1)  # 3 is a customer of T1
        routes = steady_state_routes(graph, origin=2)
        # T1 has a peer route; it exports it to customer 3 (provider route)
        assert routes[3].category is Relationship.PROVIDER
        assert routes[3].length == 3

    def test_unknown_origin(self, diamond):
        with pytest.raises(ExperimentError):
            steady_state_routes(diamond, origin=99)


class TestSimulatorAgreesWithOracle:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_converged_sim_matches_oracle(self, seed):
        graph = generate_topology(baseline_params(120), seed=seed)
        origins = graph.nodes_of_type(NodeType.C)[:3]
        for origin in origins:
            network = SimNetwork(graph, FAST, seed=seed)
            network.originate(origin, 0)
            network.run_to_convergence()
            oracle = steady_state_routes(graph, origin)
            for node_id, node in network.nodes.items():
                best = node.best_route(0)
                expected = oracle.get(node_id)
                assert (best is None) == (expected is None), (
                    f"reachability mismatch at {node_id}"
                )
                if best is None:
                    continue
                assert len(best.path) == expected.length, (
                    f"length mismatch at {node_id}"
                )
                if expected.category is None:
                    assert best.is_local
                else:
                    assert node.neighbors[best.next_hop] is expected.category, (
                        f"category mismatch at {node_id}"
                    )

    def test_oracle_reachability_equals_sim_count(self, small_baseline):
        origin = small_baseline.nodes_of_type(NodeType.C)[0]
        network = SimNetwork(small_baseline, FAST, seed=1)
        network.originate(origin, 0)
        network.run_to_convergence()
        oracle = steady_state_routes(small_baseline, origin)
        assert set(network.nodes_with_route(0)) == set(oracle)
