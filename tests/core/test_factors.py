"""Tests for the m/q/e factor accumulator (Eq. 1)."""

import pytest

from repro.core.factors import FactorAccumulator, predicted_u
from repro.errors import ExperimentError
from repro.sim.counters import UpdateCounter
from repro.topology.types import NodeType, Relationship

CUST = Relationship.CUSTOMER
PEER = Relationship.PEER
PROV = Relationship.PROVIDER


def make_counter(records):
    counter = UpdateCounter()
    for receiver, sender, rel, count in records:
        for _ in range(count):
            counter.record(receiver, sender, rel, is_withdrawal=False)
    return counter


class TestAccumulation:
    def test_no_events_raises(self, diamond):
        acc = FactorAccumulator(diamond)
        with pytest.raises(ExperimentError):
            acc.type_factors(NodeType.T)

    def test_single_event_factors(self, diamond):
        acc = FactorAccumulator(diamond)
        # T0 hears 2 updates from customer M2 and 2 from peer T1.
        acc.add_event(make_counter([(0, 2, CUST, 2), (0, 1, PEER, 2)]))
        factors = acc.type_factors(NodeType.T)
        assert factors.events == 1
        assert factors.node_count == 2
        # averaged over BOTH T nodes: T0 got 4, T1 got 0
        assert factors.u_total == pytest.approx(2.0)
        assert factors.u(CUST) == pytest.approx(1.0)
        assert factors.u(PEER) == pytest.approx(1.0)
        # m: T0 has 2 customers, T1 has 1 -> mean 1.5; peers 1 each
        assert factors.m(CUST) == pytest.approx(1.5)
        assert factors.m(PEER) == pytest.approx(1.0)
        # q: 1 active customer of 3 customer-links; 1 active peer of 2
        assert factors.q(CUST) == pytest.approx(1 / 3)
        assert factors.q(PEER) == pytest.approx(1 / 2)
        # e: 2 updates per active neighbour
        assert factors.e(CUST) == pytest.approx(2.0)
        assert factors.e(PEER) == pytest.approx(2.0)

    def test_identity_u_equals_mqe(self, diamond):
        """The aggregation must satisfy U_y = m_y q_y e_y exactly."""
        acc = FactorAccumulator(diamond)
        acc.add_event(make_counter([(0, 2, CUST, 3), (0, 3, CUST, 1), (2, 0, PROV, 2)]))
        acc.add_event(make_counter([(0, 1, PEER, 5), (3, 1, PROV, 1)]))
        for node_type in (NodeType.T, NodeType.M):
            factors = acc.type_factors(node_type)
            assert factors.u_total == pytest.approx(predicted_u(factors), abs=1e-12)
            for rel in (CUST, PEER, PROV):
                assert factors.u(rel) == pytest.approx(
                    predicted_u(factors, rel), abs=1e-12
                )

    def test_multiple_events_average(self, diamond):
        acc = FactorAccumulator(diamond)
        acc.add_event(make_counter([(0, 2, CUST, 4)]))
        acc.add_event(make_counter([(0, 2, CUST, 0)]))  # empty event
        factors = acc.type_factors(NodeType.T)
        # 4 updates over 2 events over 2 T nodes
        assert factors.u_total == pytest.approx(1.0)

    def test_per_node_updates_for_ci(self, diamond):
        acc = FactorAccumulator(diamond)
        acc.add_event(make_counter([(0, 2, CUST, 4), (1, 3, CUST, 2)]))
        factors = acc.type_factors(NodeType.T)
        assert sorted(factors.per_node_updates) == [2.0, 4.0]

    def test_node_updates(self, diamond):
        acc = FactorAccumulator(diamond)
        acc.add_event(make_counter([(2, 4, CUST, 6)]))
        assert acc.node_updates(2) == pytest.approx(6.0)
        assert acc.node_updates(0) == 0.0

    def test_all_type_factors_skips_absent_types(self, diamond):
        acc = FactorAccumulator(diamond)
        acc.add_event(make_counter([(0, 2, CUST, 1)]))
        per_type = acc.all_type_factors()
        assert NodeType.CP not in per_type  # diamond has no CP nodes
        assert set(per_type) == {NodeType.T, NodeType.M, NodeType.C}
