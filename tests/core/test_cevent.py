"""Tests for the C-event experiment driver."""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.cevent import pick_origins, run_c_event_experiment
from repro.core.factors import predicted_u
from repro.errors import ExperimentError
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.scenarios import scenario_params
from repro.topology.types import NodeType, Relationship

FAST = BGPConfig(mrai=1.0, link_delay=0.001, processing_time_max=0.01)


class TestPickOrigins:
    def test_samples_c_nodes(self, small_baseline):
        origins = pick_origins(small_baseline, 5, seed=1)
        assert len(origins) == 5
        c_nodes = set(small_baseline.nodes_of_type(NodeType.C))
        assert set(origins) <= c_nodes

    def test_caps_at_population(self, small_baseline):
        origins = pick_origins(small_baseline, 10**6, seed=1)
        assert origins == small_baseline.nodes_of_type(NodeType.C)

    def test_deterministic(self, small_baseline):
        assert pick_origins(small_baseline, 7, seed=3) == pick_origins(
            small_baseline, 7, seed=3
        )

    def test_falls_back_to_cp(self):
        graph = generate_topology(scenario_params("NO-MIDDLE", 80), seed=1)
        # strip C origins by asking on a graph slice: emulate via CP check
        cp = graph.nodes_of_type(NodeType.CP)
        assert cp  # sanity: the fallback pool exists in this scenario


class TestExperiment:
    def test_basic_run(self, small_baseline):
        stats = run_c_event_experiment(
            small_baseline, FAST, num_origins=3, seed=1
        )
        assert stats.n == 150
        assert len(stats.origins) == 3
        assert stats.u(NodeType.T) > 0
        assert stats.measured_messages > 0
        assert stats.mean_down_convergence > 0
        assert stats.mean_up_convergence > 0

    def test_explicit_origins(self, small_baseline):
        origins = small_baseline.nodes_of_type(NodeType.C)[:2]
        stats = run_c_event_experiment(
            small_baseline, FAST, origins=origins, seed=1
        )
        assert stats.origins == origins

    def test_unknown_origin_rejected(self, small_baseline):
        with pytest.raises(ExperimentError):
            run_c_event_experiment(small_baseline, FAST, origins=[10**6])

    def test_empty_origins_rejected(self, small_baseline):
        with pytest.raises(ExperimentError):
            run_c_event_experiment(small_baseline, FAST, origins=[])

    def test_reproducible(self, small_baseline):
        a = run_c_event_experiment(small_baseline, FAST, num_origins=2, seed=9)
        b = run_c_event_experiment(small_baseline, FAST, num_origins=2, seed=9)
        assert a.per_type[NodeType.T].u_total == b.per_type[NodeType.T].u_total
        assert a.measured_messages == b.measured_messages

    def test_down_up_split_sums_to_total(self, small_baseline):
        stats = run_c_event_experiment(small_baseline, FAST, num_origins=3, seed=2)
        for node_type in stats.per_type:
            total = stats.u(node_type)
            split = (
                stats.down_updates_per_type[node_type]
                + stats.up_updates_per_type[node_type]
            )
            assert split == pytest.approx(total, rel=1e-9)

    def test_factor_identity_on_real_run(self, small_baseline):
        stats = run_c_event_experiment(small_baseline, FAST, num_origins=3, seed=2)
        for factors in stats.per_type.values():
            assert factors.u_total == pytest.approx(predicted_u(factors), abs=1e-9)

    def test_factors_accessor_raises_for_absent_type(self, chain):
        stats = run_c_event_experiment(chain, FAST, num_origins=1, seed=0)
        with pytest.raises(ExperimentError):
            stats.factors(NodeType.CP)

    def test_origin_counts_nothing_in_tree_experiment(self, chain):
        """In a pure chain the origin never hears its own prefix back."""
        stats = run_c_event_experiment(chain, FAST, num_origins=1, seed=0)
        assert stats.u(NodeType.C) == 0.0

    def test_chain_counts_exactly_two_per_node(self, chain):
        """Chain topology: every non-origin node gets exactly 1 withdrawal
        + 1 announcement per C-event (the TREE corner case)."""
        stats = run_c_event_experiment(chain, FAST, num_origins=1, seed=0)
        assert stats.u(NodeType.T) == pytest.approx(2.0)
        assert stats.u(NodeType.M) == pytest.approx(2.0)
        assert stats.down_updates_per_type[NodeType.T] == pytest.approx(1.0)
        assert stats.up_updates_per_type[NodeType.T] == pytest.approx(1.0)


class TestWrateEffect:
    def test_wrate_never_reduces_updates(self, small_baseline):
        no_wrate = run_c_event_experiment(
            small_baseline, FAST.replace(wrate=False), num_origins=3, seed=4
        )
        wrate = run_c_event_experiment(
            small_baseline, FAST.replace(wrate=True), num_origins=3, seed=4
        )
        for node_type in (NodeType.T, NodeType.M, NodeType.C):
            assert wrate.u(node_type) >= no_wrate.u(node_type) * 0.99

    def test_no_wrate_e_factors_at_minimum(self, small_baseline):
        stats = run_c_event_experiment(
            small_baseline, FAST.replace(wrate=False), num_origins=3, seed=4
        )
        factors = stats.factors(NodeType.M)
        assert factors.e(Relationship.PROVIDER) == pytest.approx(2.0, abs=0.3)
