"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.bgp.config import BGPConfig
from repro.sim.network import SimNetwork
from repro.topology.graph import ASGraph
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType


def build_diamond() -> ASGraph:
    """A five-node topology exercising every relationship type.

           T0 ---- T1        (T clique, peering)
          /  \\    /
        M2    M3            (M2, M3 customers of T0; M3 also of T1)
          \\  /
           C4                (C4 multihomed to M2 and M3)
    """
    graph = ASGraph(scenario="diamond")
    graph.add_node(0, NodeType.T, [0])
    graph.add_node(1, NodeType.T, [0])
    graph.add_node(2, NodeType.M, [0])
    graph.add_node(3, NodeType.M, [0])
    graph.add_node(4, NodeType.C, [0])
    graph.add_peering_link(0, 1)
    graph.add_transit_link(2, 0)
    graph.add_transit_link(3, 0)
    graph.add_transit_link(3, 1)
    graph.add_transit_link(4, 2)
    graph.add_transit_link(4, 3)
    return graph


def build_chain(length: int = 4) -> ASGraph:
    """T0 <- M1 <- M2 <- ... <- C(last): a single provider chain."""
    graph = ASGraph(scenario="chain")
    graph.add_node(0, NodeType.T, [0])
    for i in range(1, length):
        node_type = NodeType.C if i == length - 1 else NodeType.M
        graph.add_node(i, node_type, [0])
        graph.add_transit_link(i, i - 1)
    return graph


@pytest.fixture
def diamond() -> ASGraph:
    """The five-node diamond topology."""
    return build_diamond()


@pytest.fixture
def chain() -> ASGraph:
    """A four-node provider chain."""
    return build_chain()


@pytest.fixture
def small_baseline() -> ASGraph:
    """A 150-node Baseline topology (seeded, cheap to simulate)."""
    return generate_topology(baseline_params(150), seed=42)


@pytest.fixture
def fast_config() -> BGPConfig:
    """A config with a short MRAI so convergence tests run quickly."""
    return BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


@pytest.fixture
def diamond_network(diamond, fast_config) -> SimNetwork:
    """A ready-to-run network over the diamond topology."""
    return SimNetwork(diamond, fast_config, seed=7)
