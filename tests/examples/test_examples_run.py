"""The example scripts must stay runnable.

The fast examples are executed end-to-end in a subprocess; the slower,
sweep-heavy ones are at least compiled and import-checked so signature
drift in the library breaks the build here rather than for a user.
"""

import py_compile
import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

ALL_EXAMPLES = sorted(p.name for p in EXAMPLES_DIR.glob("*.py"))

#: (script, argv) pairs cheap enough to execute in the test suite
FAST_EXAMPLES = [
    ("quickstart.py", ["200", "2"]),
    ("churn_trend_analysis.py", ["1.5"]),
    ("custom_topology_linkfailure.py", []),
    ("wrate_vs_nowrate.py", ["200", "2"]),
]


def run_example(name, args):
    return subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / name), *args],
        capture_output=True,
        text=True,
        timeout=240,
    )


class TestExamples:
    def test_expected_example_set_present(self):
        assert {
            "quickstart.py",
            "whatif_growth_scenarios.py",
            "wrate_vs_nowrate.py",
            "churn_trend_analysis.py",
            "custom_topology_linkfailure.py",
            "monitor_burstiness.py",
            "paper_tour.py",
        } <= set(ALL_EXAMPLES)

    @pytest.mark.parametrize("name", ALL_EXAMPLES)
    def test_compiles(self, name):
        py_compile.compile(str(EXAMPLES_DIR / name), doraise=True)

    @pytest.mark.parametrize("name,args", FAST_EXAMPLES)
    def test_fast_examples_execute(self, name, args):
        result = run_example(name, args)
        assert result.returncode == 0, result.stderr
        assert result.stdout.strip()

    def test_quickstart_output_structure(self):
        result = run_example("quickstart.py", ["200", "2"])
        assert "U(T " in result.stdout
        assert "factor decomposition" in result.stdout

    def test_wrate_example_shows_ratio(self):
        result = run_example("wrate_vs_nowrate.py", ["200", "2"])
        assert "ratio" in result.stdout
        assert "NO-WRATE" in result.stdout or "no-wrate" in result.stdout
