"""Tests for the on-disk checkpoint envelope."""

import json

import pytest

from repro._version import __version__
from repro.checkpoint.format import (
    FORMAT_NAME,
    FORMAT_VERSION,
    KIND_CAMPAIGN,
    KIND_NETWORK,
    KIND_SWEEP_UNIT,
    inspect_checkpoint,
    payload_digest,
    read_checkpoint,
    verify_checkpoint,
    write_checkpoint,
)
from repro.errors import CheckpointError


@pytest.fixture
def path(tmp_path):
    return tmp_path / "state" / "test.json"


class TestWriteRead:
    def test_round_trip(self, path):
        payload = {"alpha": 1, "beta": [1.5, None, "x"]}
        write_checkpoint(path, KIND_CAMPAIGN, payload)
        document = read_checkpoint(path)
        assert document.kind == KIND_CAMPAIGN
        assert document.payload == payload
        assert document.format_version == FORMAT_VERSION
        assert document.code_version == __version__
        assert document.digest_ok

    def test_creates_parent_directories(self, path):
        assert not path.parent.exists()
        write_checkpoint(path, KIND_NETWORK, {})
        assert path.exists()

    def test_no_tmp_file_left_behind(self, path):
        write_checkpoint(path, KIND_NETWORK, {"x": 1})
        assert list(path.parent.iterdir()) == [path]

    def test_rejects_unknown_kind(self, path):
        with pytest.raises(CheckpointError, match="unknown checkpoint kind"):
            write_checkpoint(path, "other", {})

    def test_expected_kind_mismatch(self, path):
        write_checkpoint(path, KIND_NETWORK, {})
        with pytest.raises(CheckpointError, match="expected a 'sweep-unit'"):
            read_checkpoint(path, expected_kind=KIND_SWEEP_UNIT)


class TestValidation:
    def test_missing_file(self, tmp_path):
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "nope.json")

    def test_not_json(self, path):
        path.parent.mkdir(parents=True)
        path.write_text("not json at all", encoding="utf-8")
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(path)

    def test_foreign_format(self, path):
        path.parent.mkdir(parents=True)
        path.write_text(json.dumps({"format": "other"}), encoding="utf-8")
        with pytest.raises(CheckpointError, match=f"not a {FORMAT_NAME}"):
            read_checkpoint(path)

    def test_future_format_version(self, path):
        write_checkpoint(path, KIND_NETWORK, {})
        data = json.loads(path.read_text(encoding="utf-8"))
        data["format_version"] = FORMAT_VERSION + 1
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(CheckpointError, match="unsupported checkpoint format"):
            read_checkpoint(path)

    def test_corrupted_payload_detected(self, path):
        write_checkpoint(path, KIND_NETWORK, {"value": 1})
        data = json.loads(path.read_text(encoding="utf-8"))
        data["payload"]["value"] = 2  # bit-rot / manual edit
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(CheckpointError, match="digest mismatch"):
            read_checkpoint(path)

    def test_foreign_code_version_refused_for_restore(self, path):
        write_checkpoint(path, KIND_NETWORK, {})
        data = json.loads(path.read_text(encoding="utf-8"))
        data["code_version"] = "0.0.0-other"
        path.write_text(json.dumps(data), encoding="utf-8")
        with pytest.raises(CheckpointError, match="refusing to restore"):
            read_checkpoint(path)
        # ...but verification is version-agnostic by design.
        assert verify_checkpoint(path).code_version == "0.0.0-other"

    def test_compatible_old_code_version_accepted(self, path):
        """Checkpoints from the 1.1.x kernel restore into the current one.

        The 1.2.0 fast-path kernel changed in-memory representations but
        not the checkpoint schema, so every version in
        COMPATIBLE_CODE_VERSIONS must pass the restore gate.
        """
        from repro.checkpoint.format import COMPATIBLE_CODE_VERSIONS

        assert "1.1.0" in COMPATIBLE_CODE_VERSIONS
        for old_version in COMPATIBLE_CODE_VERSIONS:
            write_checkpoint(path, KIND_NETWORK, {"value": 1})
            data = json.loads(path.read_text(encoding="utf-8"))
            data["code_version"] = old_version
            path.write_text(json.dumps(data), encoding="utf-8")
            document = read_checkpoint(path)
            assert document.code_version == old_version
            assert document.payload == {"value": 1}

    def test_digest_is_format_independent(self):
        # Same payload, different key order -> same digest.
        assert payload_digest({"a": 1, "b": 2}) == payload_digest({"b": 2, "a": 1})


class TestInspect:
    def test_inspect_campaign(self, path):
        write_checkpoint(
            path,
            KIND_CAMPAIGN,
            {
                "scale": "tiny",
                "seed": 5,
                "completed": [{"experiment_id": "fig04"}],
            },
        )
        summary = inspect_checkpoint(path)
        assert summary["kind"] == KIND_CAMPAIGN
        assert summary["scale"] == "tiny"
        assert summary["digest_ok"] is True
        assert "fig04" in summary["completed_experiments"]

    def test_inspect_flags_corruption_without_raising(self, path):
        write_checkpoint(path, KIND_CAMPAIGN, {"scale": "tiny"})
        data = json.loads(path.read_text(encoding="utf-8"))
        data["payload"]["scale"] = "edited"
        path.write_text(json.dumps(data), encoding="utf-8")
        assert inspect_checkpoint(path)["digest_ok"] is False
