"""Checkpoint/restore of graph-partitioned runs (schema 1.4.0).

The core claim: a partitioned run snapshot mid-flood — with border
events still in flight between barriers — restores into a runner whose
continuation is exactly the uninterrupted run (same clock, same windows,
same churn counters).
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.checkpoint.format import (
    KIND_PARTITION,
    inspect_checkpoint,
    read_checkpoint,
    verify_checkpoint,
    write_checkpoint,
)
from repro.checkpoint.partition import (
    restore_partitioned_run,
    snapshot_partitioned_run,
)
from repro.errors import CheckpointError
from repro.prefix.prefix import host_prefix
from repro.sim.partition import LockstepRunner, build_local_parts
from repro.topology.generator import generate_topology
from repro.topology.partition import partition_graph
from repro.topology.scenarios import scenario_params

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def _graph(n=36, seed=5):
    return generate_topology(scenario_params("BASELINE", n), seed=seed)


def _runner(graph, partition, seed=3):
    parts = build_local_parts(graph, partition, FAST, seed=seed)
    return LockstepRunner(partition, parts, link_delay=FAST.link_delay)


def _start_flood(runner, origin):
    """Originate and advance until border events are in flight.

    After ``advance(t)`` the pending set holds exactly the border
    messages sent in ``(t - link_delay, t]``, so stepping by less than
    the link delay is guaranteed to catch the flood mid-air.
    """
    runner.set_counting(True)
    runner.apply("originate", origin, host_prefix(0))
    target = runner.now
    while not runner.pending_border_events():
        target += FAST.link_delay / 2
        runner.advance(target)
        assert target < 5.0, "flood never produced in-flight border events"


class TestRoundTrip:
    def test_restored_continuation_matches_uninterrupted_run(self):
        graph = _graph()
        partition = partition_graph(graph, 2)
        origin = graph.node_ids[-1]

        original = _runner(graph, partition)
        _start_flood(original, origin)
        payload = snapshot_partitioned_run(original)
        assert payload["pending"], "snapshot should carry in-flight events"

        restored = restore_partitioned_run(graph, payload)
        assert restored.now == original.now
        assert restored.windows == original.windows
        assert restored.pending_border_events() == original.pending_border_events()

        for runner in (original, restored):
            runner.converge()
        assert restored.now == original.now
        assert restored.windows == original.windows
        assert restored.border_events == original.border_events
        original_counter, original_delivered = original.collect_counters()
        restored_counter, restored_delivered = restored.collect_counters()
        assert restored_delivered == original_delivered
        assert restored_counter.total == original_counter.total
        assert dict(restored_counter.received) == dict(original_counter.received)
        assert dict(restored_counter.received_by_pair) == dict(
            original_counter.received_by_pair
        )

    def test_snapshot_survives_json_round_trip_on_disk(self, tmp_path):
        graph = _graph(n=30)
        partition = partition_graph(graph, 2)
        runner = _runner(graph, partition)
        _start_flood(runner, graph.node_ids[0])
        payload = snapshot_partitioned_run(runner)

        path = tmp_path / "run.ckpt"
        write_checkpoint(path, KIND_PARTITION, payload)
        document = read_checkpoint(path, expected_kind=KIND_PARTITION)
        assert verify_checkpoint(path).digest_ok

        restored = restore_partitioned_run(graph, document.payload)
        runner.converge()
        restored.converge()
        assert restored.now == runner.now
        assert dict(restored.collect_counters()[0].received) == dict(
            runner.collect_counters()[0].received
        )

    def test_inspect_summarizes_partition_checkpoints(self, tmp_path):
        graph = _graph(n=30)
        partition = partition_graph(graph, 3)
        runner = _runner(graph, partition)
        _start_flood(runner, graph.node_ids[0])
        path = tmp_path / "run.ckpt"
        write_checkpoint(path, KIND_PARTITION, snapshot_partitioned_run(runner))
        summary = inspect_checkpoint(path)
        assert summary["kind"] == KIND_PARTITION
        assert summary["num_parts"] == 3
        assert summary["sim_time"] == runner.now
        assert summary["windows"] == runner.windows
        assert summary["border_events_in_flight"] > 0
        sizes = [int(s) for s in summary["part_sizes"].split(", ")]
        assert sorted(sizes) == sorted(partition.sizes())


class TestValidation:
    def test_snapshot_rejects_non_local_members(self):
        graph = _graph(n=30)
        partition = partition_graph(graph, 2)

        class FakeRemote:
            def cast(self, op, **kwargs):
                pass

            def gather(self):
                return None

        runner = _runner(graph, partition)
        runner.parts[1] = FakeRemote()
        with pytest.raises(CheckpointError, match="in-process"):
            snapshot_partitioned_run(runner)

    def test_restore_rejects_wrong_topology(self):
        graph = _graph(n=30)
        partition = partition_graph(graph, 2)
        runner = _runner(graph, partition)
        payload = snapshot_partitioned_run(runner)
        other = _graph(n=30, seed=6)
        with pytest.raises(CheckpointError):
            restore_partitioned_run(other, payload)

    def test_restore_rejects_missing_member_snapshot(self):
        graph = _graph(n=30)
        partition = partition_graph(graph, 2)
        payload = snapshot_partitioned_run(_runner(graph, partition))
        payload["parts"] = payload["parts"][:1]
        with pytest.raises(CheckpointError, match="member snapshots"):
            restore_partitioned_run(graph, payload)

    def test_restore_rejects_malformed_payload(self):
        graph = _graph(n=30)
        with pytest.raises(CheckpointError, match="malformed"):
            restore_partitioned_run(graph, {"num_parts": 2})
