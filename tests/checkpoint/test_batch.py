"""Checkpointed sweep-unit execution: equivalence and resume."""

import json

import pytest

from repro.bgp.config import BGPConfig
from repro.checkpoint.batch import (
    execute_sweep_unit_checkpointed,
    raw_sums_from_json,
    raw_sums_to_json,
    unit_checkpoint_key,
    unit_checkpoint_path,
)
from repro.core.factors import RawFactorSums
from repro.core.sweep import SweepUnit, execute_sweep_unit
from repro.errors import CheckpointError

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)

#: Acceptance grid: three (scenario, n, config) combinations.
COMBOS = [
    pytest.param("baseline", 60, FAST, id="baseline-mrai"),
    pytest.param("baseline", 80, FAST.replace(mrai=0.0), id="baseline-nolimit"),
    pytest.param("dense-core", 70, FAST.replace(wrate=True), id="dense-core-wrate"),
]


def _unit(scenario, n, config, **overrides):
    fields = dict(
        scenario=scenario,
        n=n,
        num_origins=4,
        batch_index=0,
        num_batches=1,
        seed=17,
        config=config,
        scenario_kwargs=(),
    )
    fields.update(overrides)
    return SweepUnit(**fields)


def _assert_identical(a, b):
    """Byte-identity over everything but wall-clock time."""
    assert a.raw.events == b.raw.events
    assert a.raw.updates == b.raw.updates
    assert a.raw.active == b.raw.active
    assert a.raw.total_updates == b.raw.total_updates
    assert a.origins == b.origins
    assert a.down_totals == b.down_totals
    assert a.up_totals == b.up_totals
    assert a.down_convergence == b.down_convergence
    assert a.up_convergence == b.up_convergence
    assert a.measured_messages == b.measured_messages


class Interrupt(Exception):
    """Stand-in for a crash between two measured events."""


def _interrupt_after(monkeypatch, events):
    """Make the batch loop die once it has measured ``events`` events."""
    import repro.checkpoint.batch as batch_module

    original = batch_module.run_c_event_batch

    def dying(*args, **kwargs):
        inner = kwargs.get("after_event")

        def hook(cursor):
            if inner is not None:
                inner(cursor)
            if cursor.next_index == events:
                raise Interrupt

        kwargs["after_event"] = hook
        return original(*args, **kwargs)

    monkeypatch.setattr(batch_module, "run_c_event_batch", dying)


class TestEquivalence:
    @pytest.mark.parametrize("scenario, n, config", COMBOS)
    def test_uninterrupted_matches_plain(self, tmp_path, scenario, n, config):
        unit = _unit(scenario, n, config)
        plain = execute_sweep_unit(unit)
        checkpointed = execute_sweep_unit_checkpointed(unit, tmp_path)
        _assert_identical(plain, checkpointed)

    @pytest.mark.parametrize("scenario, n, config", COMBOS)
    def test_interrupted_resume_matches_plain(
        self, tmp_path, monkeypatch, scenario, n, config
    ):
        unit = _unit(scenario, n, config)
        plain = execute_sweep_unit(unit)

        _interrupt_after(monkeypatch, events=2)
        with pytest.raises(Interrupt):
            execute_sweep_unit_checkpointed(unit, tmp_path)
        monkeypatch.undo()

        path = unit_checkpoint_path(tmp_path, unit)
        assert path.exists(), "interrupt should leave a checkpoint behind"
        resumed = execute_sweep_unit_checkpointed(unit, tmp_path)
        _assert_identical(plain, resumed)

    def test_checkpoint_removed_on_success(self, tmp_path):
        unit = _unit("baseline", 60, FAST)
        execute_sweep_unit_checkpointed(unit, tmp_path)
        assert list(tmp_path.iterdir()) == []


class TestResumeRobustness:
    def test_corrupt_checkpoint_recomputed_from_scratch(self, tmp_path):
        unit = _unit("baseline", 60, FAST)
        path = unit_checkpoint_path(tmp_path, unit)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text("{broken", encoding="utf-8")
        result = execute_sweep_unit_checkpointed(unit, tmp_path)
        _assert_identical(execute_sweep_unit(unit), result)

    def test_resume_false_ignores_checkpoint(self, tmp_path, monkeypatch):
        unit = _unit("baseline", 60, FAST)
        _interrupt_after(monkeypatch, events=2)
        with pytest.raises(Interrupt):
            execute_sweep_unit_checkpointed(unit, tmp_path)
        monkeypatch.undo()
        result = execute_sweep_unit_checkpointed(unit, tmp_path, resume=False)
        _assert_identical(execute_sweep_unit(unit), result)

    def test_checkpoint_every_bounds_writes(self, tmp_path, monkeypatch):
        unit = _unit("baseline", 60, FAST)
        writes = []
        import repro.checkpoint.batch as batch_module

        original = batch_module.write_checkpoint
        monkeypatch.setattr(
            batch_module,
            "write_checkpoint",
            lambda *a, **kw: (writes.append(1), original(*a, **kw)),
        )
        execute_sweep_unit_checkpointed(unit, tmp_path, checkpoint_every=2)
        # 4 origins, every 2nd event (the final event also checkpoints).
        assert len(writes) == 2

    def test_checkpoint_every_must_be_positive(self, tmp_path):
        unit = _unit("baseline", 60, FAST)
        with pytest.raises(CheckpointError, match="checkpoint_every"):
            execute_sweep_unit_checkpointed(unit, tmp_path, checkpoint_every=0)


class TestUnitKeys:
    def test_key_distinguishes_units(self):
        base = _unit("baseline", 60, FAST)
        assert unit_checkpoint_key(base) == unit_checkpoint_key(base)
        for other in (
            _unit("dense-core", 60, FAST),
            _unit("baseline", 80, FAST),
            _unit("baseline", 60, FAST, seed=18),
            _unit("baseline", 60, FAST.replace(mrai=5.0)),
            _unit("baseline", 60, FAST, batch_index=1, num_batches=2),
        ):
            assert unit_checkpoint_key(other) != unit_checkpoint_key(base)

    def test_raw_sums_json_round_trip(self):
        raw = RawFactorSums.zeros([3, 1, 2])
        raw.events = 4
        raw.total_updates[1] = 7
        for rel in raw.updates[3]:
            raw.updates[3][rel] = 2
            raw.active[2][rel] = 1
        blob = json.dumps(raw_sums_to_json(raw))
        restored = raw_sums_from_json(json.loads(blob))
        assert restored.events == raw.events
        assert restored.updates == raw.updates
        assert restored.active == raw.active
        assert restored.total_updates == raw.total_updates
        assert list(restored.total_updates) == [3, 1, 2]  # insertion order
