"""Byte-identity of network snapshot/restore.

The subsystem's hard guarantee: interrupting a simulation at an arbitrary
event boundary, serializing everything through JSON, restoring onto a
freshly generated copy of the topology and continuing produces *exactly*
the state an uninterrupted run reaches — same clock, same counters, same
RIBs, same RNG streams.
"""

import json

import pytest

from repro.bgp.config import BGPConfig
from repro.checkpoint import restore_network, snapshot_network
from repro.errors import CheckpointError
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.scenarios import scenario_params

FAST = dict(link_delay=0.001, processing_time_max=0.01)

#: The acceptance grid: three (scenario, n, config) combinations covering
#: rate limiting on/off, WRATE, and a non-default growth model.
COMBOS = [
    pytest.param("baseline", 60, BGPConfig(mrai=2.0, **FAST), id="baseline-mrai"),
    pytest.param("baseline", 80, BGPConfig(mrai=0.0, **FAST), id="baseline-nolimit"),
    pytest.param(
        "dense-core",
        70,
        BGPConfig(mrai=2.0, wrate=True, **FAST),
        id="dense-core-wrate",
    ),
]


def _build(scenario, n, config, *, seed=11):
    graph = generate_topology(scenario_params(scenario, n), seed=seed)
    return graph, SimNetwork(graph, config, seed=seed + 1)


def _drive(network, *, steps):
    """Originate + withdraw at two stubs and execute ``steps`` events."""
    stubs = [nid for nid in network.graph.node_ids if not network.graph.customers_of(nid)]
    network.start_counting()
    network.originate(stubs[-1], 0)
    network.originate(stubs[0], 1)
    executed = 0
    while executed < steps and network.engine.step():
        executed += 1
    if network.engine.pending_events == 0:
        # Keep some events in flight so the snapshot exercises the heap.
        network.withdraw(stubs[-1], 0)
        for _ in range(min(steps, 10)):
            network.engine.step()


def _full_state(network):
    """Everything the byte-identity contract covers."""
    return {
        "now": network.engine.now,
        "executed": network.engine.executed_events,
        "next_sequence": network.engine.next_sequence,
        "delivered": network.delivered_messages,
        "counter": network.counter.dump_state(),
        "nodes": {
            nid: node.checkpoint_state() for nid, node in network.nodes.items()
        },
    }


class TestRoundTrip:
    @pytest.mark.parametrize("scenario, n, config", COMBOS)
    def test_restore_then_run_is_byte_identical(self, scenario, n, config):
        graph, reference = _build(scenario, n, config)
        _drive(reference, steps=200)

        # Snapshot mid-flight, force a real JSON round trip, restore onto
        # a *separately generated* copy of the same topology.
        payload = json.loads(json.dumps(snapshot_network(reference)))
        graph2 = generate_topology(
            scenario_params(scenario, n), seed=11
        )
        restored = restore_network(graph2, payload)
        assert _full_state(restored) == _full_state(reference)

        # The crux: both continue to convergence and stay identical.
        reference.run_to_convergence()
        restored.run_to_convergence()
        assert _full_state(restored) == _full_state(reference)

    @pytest.mark.parametrize("scenario, n, config", COMBOS)
    def test_snapshot_is_pure_json(self, scenario, n, config):
        _, network = _build(scenario, n, config)
        _drive(network, steps=100)
        blob = json.dumps(snapshot_network(network), sort_keys=True)
        assert json.loads(blob) == json.loads(blob)  # round-trips stably

    def test_final_rib_contents_survive(self):
        graph, network = _build("baseline", 60, BGPConfig(mrai=2.0, **FAST))
        _drive(network, steps=150)
        payload = snapshot_network(network)
        restored = restore_network(graph, payload)
        restored.run_to_convergence()
        network.run_to_convergence()
        for nid in graph.node_ids:
            a, b = network.nodes[nid], restored.nodes[nid]
            assert a.adj_rib_in.entries() == b.adj_rib_in.entries()
            assert a.loc_rib.entries() == b.loc_rib.entries()


class TestTraceAndDamping:
    def test_monitor_trace_survives(self):
        graph, network = _build("baseline", 60, BGPConfig(mrai=2.0, **FAST))
        monitors = graph.node_ids[:3]
        network.attach_monitors(list(monitors))
        _drive(network, steps=150)
        restored = restore_network(graph, snapshot_network(network))
        assert restored.trace is not None
        assert restored.trace.monitors == network.trace.monitors
        assert restored.trace.updates() == network.trace.updates()

    def test_damping_events_round_trip(self):
        from repro.bgp.config import DampingConfig

        config = BGPConfig(
            mrai=2.0,
            damping=DampingConfig(
                enabled=True, suppress_threshold=1.5, reuse_threshold=0.5,
                half_life=5.0,
            ),
            **FAST,
        )
        graph, network = _build("baseline", 60, config)
        stub = [n for n in graph.node_ids if not graph.customers_of(n)][-1]
        network.originate(stub, 0)
        network.run_to_convergence()
        # Flap to build damping penalties and schedule reuse checks.
        for _ in range(3):
            network.withdraw(stub, 0)
            for _ in range(30):
                network.engine.step()
            network.originate(stub, 0)
            for _ in range(30):
                network.engine.step()
        restored = restore_network(graph, snapshot_network(network))
        network.run_to_convergence()
        restored.run_to_convergence()
        assert _full_state(restored) == _full_state(network)


class TestRestoreValidation:
    def test_wrong_topology_rejected(self):
        _, network = _build("baseline", 60, BGPConfig(mrai=2.0, **FAST))
        other = generate_topology(scenario_params("baseline", 60), seed=99)
        with pytest.raises(CheckpointError, match="topology mismatch"):
            restore_network(other, snapshot_network(network))

    def test_opaque_event_refused(self):
        _, network = _build("baseline", 60, BGPConfig(mrai=2.0, **FAST))
        network.engine.schedule(1.0, lambda: None)
        with pytest.raises(CheckpointError, match="opaque event callback"):
            snapshot_network(network)

    def test_unknown_event_kind_refused(self):
        graph, network = _build("baseline", 60, BGPConfig(mrai=2.0, **FAST))
        _drive(network, steps=50)
        payload = snapshot_network(network)
        assert payload["engine"]["pending"], "snapshot should have queued events"
        payload["engine"]["pending"][0][2][0] = "from-the-future"
        with pytest.raises(CheckpointError, match="unknown event kind"):
            restore_network(graph, payload)

    def test_malformed_payload_rejected(self):
        graph, network = _build("baseline", 60, BGPConfig(mrai=2.0, **FAST))
        payload = snapshot_network(network)
        del payload["engine"]
        with pytest.raises(CheckpointError, match="malformed network payload"):
            restore_network(graph, payload)
