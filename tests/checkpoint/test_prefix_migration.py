"""Checkpoint coverage for prefix tokens (schema 1.3.0).

Two directions:

* a run using real :class:`Prefix` tokens must round-trip byte-identically
  (tokens come back as the *same interned objects*);
* a 1.2.0-style document — bare-int prefixes, no per-node decision
  counters — must still restore, with the counters starting at zero.
"""

import json

from repro.bgp.config import BGPConfig
from repro.checkpoint import restore_network, snapshot_network
from repro.checkpoint.state import node_state_from_json, node_state_to_json
from repro.prefix.prefix import Prefix, make_prefix
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.scenarios import scenario_params

FAST = dict(link_delay=0.001, processing_time_max=0.01)


def _build(*, config=None, seed=11):
    graph = generate_topology(scenario_params("baseline", 60), seed=seed)
    network = SimNetwork(
        graph, config or BGPConfig(mrai=2.0, **FAST), seed=seed + 1
    )
    return graph, network


def _full_state(network):
    return {
        "now": network.engine.now,
        "executed": network.engine.executed_events,
        "nodes": {
            nid: node.checkpoint_state() for nid, node in network.nodes.items()
        },
    }


def _drive_prefix_run(network, prefixes):
    stubs = [
        nid
        for nid in network.graph.node_ids
        if not network.graph.customers_of(nid)
    ]
    network.start_counting()
    for stub, prefix in zip(stubs, prefixes):
        network.originate(stub, prefix)
    for _ in range(250):
        if not network.engine.step():
            break
    # Keep updates in flight so queued messages carry Prefix tokens too.
    network.withdraw(stubs[0], prefixes[0])
    for _ in range(10):
        network.engine.step()
    return stubs


class TestPrefixTokenRoundTrip:
    PREFIXES = [
        Prefix.parse("10.0.0.0/16"),
        Prefix.parse("10.1.0.0/16"),
        Prefix.parse("192.168.0.0/24"),
    ]

    def test_snapshot_restore_is_byte_identical(self):
        graph, reference = _build()
        _drive_prefix_run(reference, self.PREFIXES)
        payload = json.loads(json.dumps(snapshot_network(reference)))
        restored = restore_network(graph, payload)
        assert _full_state(restored) == _full_state(reference)
        reference.run_to_convergence()
        restored.run_to_convergence()
        assert _full_state(restored) == _full_state(reference)

    def test_restored_tokens_are_interned_prefixes(self):
        graph, network = _build()
        _drive_prefix_run(network, self.PREFIXES)
        restored = restore_network(
            graph, json.loads(json.dumps(snapshot_network(network)))
        )
        restored.run_to_convergence()
        seen = {
            prefix
            for node in restored.nodes.values()
            for prefix, _route in node.loc_rib.entries()
        }
        assert self.PREFIXES[1] in seen
        for prefix in seen:
            # identity, not mere equality: deserialization must intern
            assert prefix is make_prefix(prefix.addr, prefix.length)

    def test_radix_backend_round_trips_too(self):
        config = BGPConfig(mrai=2.0, rib_backend="radix", **FAST)
        graph, reference = _build(config=config)
        _drive_prefix_run(reference, self.PREFIXES)
        restored = restore_network(
            graph, json.loads(json.dumps(snapshot_network(reference)))
        )
        reference.run_to_convergence()
        restored.run_to_convergence()
        assert _full_state(restored) == _full_state(reference)


class TestIntPrefixMigration:
    def _legacy_node_document(self):
        """A node state as a 1.2.0 build would have written it."""
        _, network = _build()
        stubs = [
            nid
            for nid in network.graph.node_ids
            if not network.graph.customers_of(nid)
        ]
        network.originate(stubs[0], 0)
        network.originate(stubs[1], 1)
        network.run_to_convergence()
        node = network.nodes[stubs[2]]
        document = node_state_to_json(node.checkpoint_state())
        # 1.2.0 documents predate the decision counters.
        del document["decisions_run"]
        del document["decisions_skipped"]
        return json.loads(json.dumps(document))

    def test_counters_default_to_zero(self):
        state = node_state_from_json(self._legacy_node_document())
        assert state["decisions_run"] == 0
        assert state["decisions_skipped"] == 0

    def test_int_tokens_stay_ints(self):
        state = node_state_from_json(self._legacy_node_document())
        prefixes = [prefix for prefix, _n, _r in state["adj_rib_in"]]
        prefixes += [prefix for prefix, _r in state["loc_rib"]]
        assert prefixes, "the sampled node must have learned routes"
        assert all(isinstance(prefix, int) for prefix in prefixes)

    def test_network_restore_accepts_a_counterless_payload(self):
        graph, network = _build()
        stub = [
            nid for nid in graph.node_ids if not graph.customers_of(nid)
        ][0]
        network.originate(stub, 0)
        for _ in range(120):
            network.engine.step()
        payload = json.loads(json.dumps(snapshot_network(network)))
        for _node_id, state in payload["nodes"]:
            del state["decisions_run"]
            del state["decisions_skipped"]
        restored = restore_network(graph, payload)
        assert all(
            node.decisions_run == 0 and node.decisions_skipped == 0
            for node in restored.nodes.values()
        )
        restored.run_to_convergence()  # and the run continues cleanly
