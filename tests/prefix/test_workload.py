"""Tests for multi-prefix allocation and churn generation."""

import dataclasses

import pytest

from repro.errors import ParameterError
from repro.prefix.prefix import ADDRESS_BITS, make_prefix
from repro.prefix.workload import (
    DEAGGREGATE,
    FLAP,
    REAGGREGATE,
    PrefixChurnSpec,
    allocate_prefixes,
    generate_prefix_churn,
)

ORIGINS = list(range(100, 120))


class TestAllocation:
    def test_exact_total_and_no_empty_participant(self):
        allocation = allocate_prefixes(ORIGINS, 57, seed=3)
        assert allocation.num_prefixes == 57
        assert all(len(run) >= 1 for run in allocation.assignments.values())

    def test_deterministic_per_seed(self):
        a = allocate_prefixes(ORIGINS, 40, seed=5)
        b = allocate_prefixes(ORIGINS, 40, seed=5)
        assert a == b
        assert a != allocate_prefixes(ORIGINS, 40, seed=6)

    def test_power_law_shape_heavy_hitters_first(self):
        allocation = allocate_prefixes(ORIGINS, 400, seed=1, alpha=1.1)
        counts = [len(allocation.assignments[o]) for o in allocation.origins]
        assert counts[0] == max(counts)
        assert counts[0] > counts[-1]  # rank^-alpha: the head dominates

    def test_runs_are_contiguous_siblings(self):
        allocation = allocate_prefixes(ORIGINS, 30, seed=2, base_length=20)
        step = 1 << (ADDRESS_BITS - 20)
        for run in allocation.assignments.values():
            assert all(p.length == 20 for p in run)
            addrs = [p.addr for p in run]
            assert addrs == list(range(addrs[0], addrs[0] + step * len(run), step))

    def test_runs_are_disjoint_across_origins(self):
        allocation = allocate_prefixes(ORIGINS, 80, seed=4)
        prefixes = allocation.prefixes()
        assert len(prefixes) == len(set(prefixes)) == 80

    def test_fewer_prefixes_than_origins(self):
        allocation = allocate_prefixes(ORIGINS, 5, seed=0)
        assert len(allocation.origins) == 5
        assert allocation.num_prefixes == 5

    def test_origin_of_inverts_assignment(self):
        allocation = allocate_prefixes(ORIGINS, 30, seed=2)
        for origin in allocation.origins:
            for prefix in allocation.assignments[origin]:
                assert allocation.origin_of(prefix) == origin
        with pytest.raises(ParameterError):
            allocation.origin_of(make_prefix(0xFF000000, 16))

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            allocate_prefixes([], 10)
        with pytest.raises(ParameterError):
            allocate_prefixes(ORIGINS, 0)
        with pytest.raises(ParameterError):
            allocate_prefixes(ORIGINS, 10, base_length=32)
        with pytest.raises(ParameterError):
            allocate_prefixes(ORIGINS, 5000, base_length=4)


class TestSpecValidation:
    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ParameterError):
            PrefixChurnSpec(duration=0.0)
        with pytest.raises(ParameterError):
            PrefixChurnSpec(event_rate=0.0)
        with pytest.raises(ParameterError):
            PrefixChurnSpec(mean_downtime=-1.0)
        with pytest.raises(ParameterError):
            PrefixChurnSpec(deaggregation_probability=1.5)


class TestChurnGeneration:
    SPEC = PrefixChurnSpec(
        duration=2000.0,
        event_rate=0.1,
        mean_downtime=40.0,
        deaggregation_probability=0.3,
    )

    def events(self, seed=7, spec=None):
        allocation = allocate_prefixes(ORIGINS, 30, seed=seed)
        return allocation, generate_prefix_churn(
            allocation, spec or self.SPEC, seed=seed
        )

    def test_deterministic_per_seed(self):
        _, a = self.events(seed=7)
        _, b = self.events(seed=7)
        assert a == b
        _, c = self.events(seed=8)
        assert a != c

    def test_sorted_by_time_and_origins_match_allocation(self):
        allocation, events = self.events()
        assert events
        assert all(a.time <= b.time for a, b in zip(events, events[1:]))
        for event in events:
            base = (
                event.prefix
                if event.prefix.length == allocation.base_length
                else None
            )
            assert base is not None, "events target allocated prefixes only"
            assert allocation.origin_of(event.prefix) == event.origin

    def test_flap_arrivals_stay_inside_the_window(self):
        _, events = self.events()
        for event in events:
            if event.kind != REAGGREGATE:
                assert event.time < self.SPEC.duration
                assert event.downtime > 0

    def test_deaggregations_are_paired_with_reaggregations(self):
        _, events = self.events()
        deagg = [e for e in events if e.kind == DEAGGREGATE]
        reagg = [e for e in events if e.kind == REAGGREGATE]
        assert deagg, "spec with p=0.3 must draw some deaggregations"
        assert len(deagg) == len(reagg)
        unmatched = list(reagg)
        for event in deagg:
            match = next(
                r
                for r in unmatched
                if r.prefix is event.prefix
                and r.time == pytest.approx(event.time + event.downtime)
            )
            unmatched.remove(match)
        assert not unmatched

    def test_split_prefix_absorbs_events_until_reaggregation(self):
        _, events = self.events()
        split_until = {}
        for event in events:
            if event.kind == DEAGGREGATE:
                assert split_until.get(event.prefix, -1.0) < event.time
                split_until[event.prefix] = event.time + event.downtime
            elif event.kind == FLAP:
                assert not (
                    event.prefix in split_until
                    and event.time < split_until[event.prefix]
                ), "a flap was scheduled while its prefix was deaggregated"

    def test_zero_probability_yields_flaps_only(self):
        spec = dataclasses.replace(self.SPEC, deaggregation_probability=0.0)
        _, events = self.events(spec=spec)
        assert events
        assert all(event.kind == FLAP for event in events)
