"""Backend equivalence: RadixAdjRIBIn/RadixLocRIB vs the dict reference.

The radix backend must be observationally identical to the dict backend
on every method the decision process uses — same return values, same
candidate order, same insertion-order iteration, same dirty-set drain
order — on randomized operation sequences mixing Prefix and legacy int
tokens.  The structural extras (longest match, covered) are checked
against brute force.
"""

import random

from repro.bgp.rib import AdjRIBIn, LocRIB
from repro.bgp.route import make_route
from repro.prefix.prefix import make_prefix
from repro.prefix.rib import RadixAdjRIBIn, RadixLocRIB

NEIGHBORS = [2, 3, 5, 8]


def token_pool():
    """A mixed pool of Prefix and legacy-int tokens."""
    tokens = [make_prefix(index << 16, 16) for index in range(12)]
    low, high = tokens[0].children()
    tokens += [low, high, tokens[0].parent()]
    tokens += [0, 1, 7]  # legacy bare-int tokens
    return tokens


def random_route(rng, prefix):
    path = tuple(rng.sample(range(100, 140), rng.randint(1, 4)))
    return make_route(prefix, path, rng.choice((0, 100)))


class TestAdjRIBInEquivalence:
    def drive(self, seed, steps=400):
        rng = random.Random(seed)
        pool = token_pool()
        reference, radix = AdjRIBIn(), RadixAdjRIBIn()
        for _step in range(steps):
            prefix = rng.choice(pool)
            neighbor = rng.choice(NEIGHBORS)
            route = None if rng.random() < 0.4 else random_route(rng, prefix)
            assert reference.update(prefix, neighbor, route) == radix.update(
                prefix, neighbor, route
            )
            assert reference.candidates(prefix) == radix.candidates(prefix)
            assert reference.route_from(prefix, neighbor) == radix.route_from(
                prefix, neighbor
            )
            if rng.random() < 0.1:
                assert reference.take_dirty() == radix.take_dirty()
                assert reference.dirty_count == radix.dirty_count == 0
        return reference, radix

    def test_random_sequences_stay_identical(self):
        for seed in range(5):
            reference, radix = self.drive(seed)
            assert reference.entries() == radix.entries()
            assert list(reference.prefixes()) == list(radix.prefixes())
            for neighbor in NEIGHBORS:
                assert reference.prefixes_from(neighbor) == radix.prefixes_from(
                    neighbor
                )
            assert len(reference) == len(radix)
            assert reference.take_dirty() == radix.take_dirty()

    def test_covered_matches_brute_force(self):
        _reference, radix = self.drive(11)
        parent = make_prefix(0, 8)
        expected = sorted(
            {
                prefix
                for prefix, _n, _r in radix.entries()
                if not isinstance(prefix, int) and parent.contains(prefix)
            },
            key=lambda p: (p.addr, p.length),
        )
        assert radix.covered(parent) == expected

    def test_dirty_marks_follow_change_order(self):
        reference, radix = AdjRIBIn(), RadixAdjRIBIn()
        a, b = make_prefix(0x0A000000, 8), make_prefix(0x0B000000, 8)
        for rib in (reference, radix):
            rib.update(b, 2, make_route(b, (2,), 0))
            rib.update(a, 2, make_route(a, (2,), 0))
            rib.update(b, 3, make_route(b, (3,), 0))  # b already marked
        assert reference.take_dirty() == radix.take_dirty() == [b, a]

    def test_identical_interned_route_is_not_a_change(self):
        radix = RadixAdjRIBIn()
        prefix = make_prefix(0x0A000000, 8)
        route = make_route(prefix, (2,), 0)
        radix.update(prefix, 2, route)
        radix.take_dirty()
        assert radix.update(prefix, 2, route) is route
        assert radix.dirty_count == 0

    def test_withdrawing_absent_entry_is_a_noop(self):
        radix = RadixAdjRIBIn()
        assert radix.update(make_prefix(0, 8), 2, None) is None
        assert radix.dirty_count == 0
        assert len(radix) == 0


class TestLocRIBEquivalence:
    def test_random_sequences_stay_identical(self):
        rng = random.Random(23)
        pool = token_pool()
        reference, radix = LocRIB(), RadixLocRIB()
        for _step in range(400):
            prefix = rng.choice(pool)
            route = None if rng.random() < 0.4 else random_route(rng, prefix)
            assert reference.install(prefix, route) == radix.install(prefix, route)
            assert reference.best(prefix) == radix.best(prefix)
        assert reference.entries() == radix.entries()
        assert reference.prefixes() == radix.prefixes()
        assert len(reference) == len(radix)

    def test_longest_match_tracks_installs_and_removals(self):
        radix = RadixLocRIB()
        parent = make_prefix(0x0A000000, 8)
        child = make_prefix(0x0A000000, 9)
        host = make_prefix(0x0A000001, 32)
        parent_route = make_route(parent, (2,), 0)
        child_route = make_route(child, (3,), 0)
        radix.install(parent, parent_route)
        assert radix.longest_match(host) == (parent, parent_route)
        radix.install(child, child_route)
        assert radix.longest_match(host) == (child, child_route)
        radix.install(child, None)
        assert radix.longest_match(host) == (parent, parent_route)
        radix.install(parent, None)
        assert radix.longest_match(host) is None

    def test_covered_reflects_installed_routes_only(self):
        radix = RadixLocRIB()
        parent = make_prefix(0x0A000000, 8)
        child = make_prefix(0x0A800000, 9)
        child_route = make_route(child, (2,), 0)
        radix.install(child, child_route)
        radix.install(7, make_route(7, (2,), 0))  # int tokens stay out of the trie
        assert radix.covered(parent) == [(child, child_route)]

    def test_reinstalling_equal_route_reports_no_change(self):
        radix = RadixLocRIB()
        prefix = make_prefix(0x0A000000, 8)
        route = make_route(prefix, (2,), 0)
        assert radix.install(prefix, route)
        assert not radix.install(prefix, route)
        assert not radix.install(7, None)  # removing an absent int token
