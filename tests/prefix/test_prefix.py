"""Tests for the :class:`Prefix` value type and its token contract."""

import pickle

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.prefix.prefix import (
    ADDRESS_BITS,
    Prefix,
    host_prefix,
    iter_block,
    make_prefix,
    prefix_from_json,
    prefix_to_json,
)


def prefixes(max_length=ADDRESS_BITS):
    """Strategy: canonical (addr, length) pairs as interned Prefixes."""
    return st.integers(0, max_length).flatmap(
        lambda length: st.integers(0, (1 << length) - 1 if length else 0).map(
            lambda top: make_prefix(top << (ADDRESS_BITS - length), length)
        )
    )


class TestValueSemantics:
    def test_equality_is_by_value(self):
        assert Prefix(0x0A000000, 8) == Prefix(0x0A000000, 8)
        assert Prefix(0x0A000000, 8) != Prefix(0x0A000000, 9)
        assert Prefix(0x0A000000, 8) != Prefix(0x0B000000, 8)

    def test_interning_returns_the_same_object(self):
        assert make_prefix(0x0A000000, 8) is make_prefix(0x0A000000, 8)

    def test_hash_matches_equality(self):
        assert hash(Prefix(0x0A000000, 8)) == hash(make_prefix(0x0A000000, 8))

    def test_frozen(self):
        prefix = make_prefix(0x0A000000, 8)
        with pytest.raises(Exception):
            prefix.addr = 1

    def test_pickle_round_trips_through_intern_table(self):
        prefix = make_prefix(0x0A000000, 8)
        assert pickle.loads(pickle.dumps(prefix)) is prefix

    def test_non_canonical_address_rejected(self):
        with pytest.raises(ParameterError, match="host bits"):
            Prefix(0x0A000001, 8)

    def test_length_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            Prefix(0, 33)
        with pytest.raises(ParameterError):
            Prefix(0, -1)

    def test_address_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            Prefix(1 << 32, 32)


class TestMixedTokenOrdering:
    """Int tokens and Prefix tokens must sort totally and deterministically."""

    def test_every_int_sorts_before_every_prefix(self):
        smallest = make_prefix(0, 0)
        assert 10**9 < smallest
        assert smallest > -5
        assert not smallest < 0
        assert smallest >= 0

    def test_mixed_sort_is_total(self):
        tokens = [make_prefix(0x0A000000, 8), 3, make_prefix(0, 0), 1, 2]
        ordered = sorted(tokens)
        assert ordered == [1, 2, 3, make_prefix(0, 0), make_prefix(0x0A000000, 8)]

    def test_equality_across_kinds_is_false(self):
        assert make_prefix(0, 32) != 0
        assert not (make_prefix(0, 32) == 0)

    @given(prefixes(), prefixes())
    def test_prefix_order_is_addr_then_length(self, a, b):
        assert (a < b) == ((a.addr, a.length) < (b.addr, b.length))


class TestTextAndJson:
    def test_str_is_dotted_quad(self):
        assert str(make_prefix(0x0A010200, 24)) == "10.1.2.0/24"

    def test_parse_round_trips(self):
        prefix = Prefix.parse("192.168.4.0/22")
        assert prefix is make_prefix(0xC0A80400, 22)
        assert Prefix.parse(str(prefix)) is prefix

    def test_parse_rejects_garbage(self):
        for text in ("10.0.0.0", "10.0.0/8", "10.0.0.256/8", "banana/8"):
            with pytest.raises(ParameterError):
                Prefix.parse(text)

    def test_json_int_passthrough(self):
        assert prefix_to_json(7) == 7
        assert prefix_from_json(7) == 7

    def test_json_prefix_is_addr_length_pair(self):
        prefix = make_prefix(0x0A000000, 8)
        assert prefix_to_json(prefix) == [0x0A000000, 8]
        assert prefix_from_json([0x0A000000, 8]) is prefix

    @given(prefixes())
    def test_json_round_trip(self, prefix):
        assert prefix_from_json(prefix_to_json(prefix)) is prefix


class TestStructure:
    def test_parent_shortens_by_one_bit(self):
        assert make_prefix(0x0A010000, 16).parent() is make_prefix(0x0A000000, 15)

    def test_default_route_has_no_parent(self):
        assert make_prefix(0, 0).parent() is None

    def test_children_split_the_address_space(self):
        low, high = make_prefix(0x0A000000, 8).children()
        assert low is make_prefix(0x0A000000, 9)
        assert high is make_prefix(0x0A800000, 9)

    def test_host_prefix_cannot_split(self):
        with pytest.raises(ParameterError):
            host_prefix(1).children()

    @given(prefixes(max_length=31))
    def test_children_parent_inverts(self, prefix):
        low, high = prefix.children()
        assert low.parent() is prefix
        assert high.parent() is prefix
        assert prefix.contains(low) and prefix.contains(high)

    @given(prefixes(), prefixes())
    def test_contains_matches_definition(self, a, b):
        expected = a.length <= b.length and (b.addr & a.netmask) == a.addr
        assert a.contains(b) == expected

    def test_iter_block_enumerates_in_address_order(self):
        base = make_prefix(0x0A000000, 8)
        block = list(iter_block(base, 10))
        assert len(block) == 4
        assert block[0] is make_prefix(0x0A000000, 10)
        assert block == sorted(block)
        assert all(base.contains(p) for p in block)

    def test_iter_block_rejects_shorter_lengths(self):
        with pytest.raises(ParameterError):
            list(iter_block(make_prefix(0x0A000000, 8), 4))


class TestHostPrefixIntIdentity:
    """The single-prefix C-event machinery swaps ints for /32 tokens; the
    swap is only sound if host prefixes sort exactly like the ints did."""

    def test_host_prefixes_sort_like_their_ints(self):
        indices = [9, 2, 7, 0, 5]
        ordered = sorted(host_prefix(i) for i in indices)
        assert ordered == [host_prefix(i) for i in sorted(indices)]

    def test_host_prefixes_are_distinct_per_index(self):
        assert len({host_prefix(i) for i in range(100)}) == 100
