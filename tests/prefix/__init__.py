"""Namespace package so test module basenames stay unique."""
