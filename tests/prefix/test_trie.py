"""Property tests: :class:`PrefixTrie` against a brute-force dict model.

The reference model is a plain ``dict`` plus O(n) scans for the
structural queries — obviously correct, and the trie must agree with it
on arbitrary operation sequences.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.prefix.prefix import ADDRESS_BITS, make_prefix
from repro.prefix.trie import PrefixTrie


def prefixes(min_length=0, max_length=ADDRESS_BITS):
    return st.integers(min_length, max_length).flatmap(
        lambda length: st.integers(0, (1 << length) - 1 if length else 0).map(
            lambda top: make_prefix(top << (ADDRESS_BITS - length), length)
        )
    )


#: (op, prefix) sequences; "insert" carries the value implicitly (a
#: counter applied at replay time so reinsertions are distinguishable).
operations = st.lists(
    st.tuples(st.sampled_from(["insert", "delete"]), prefixes(max_length=12)),
    max_size=60,
)


def replay(ops):
    """Apply one op sequence to both the trie and the dict model."""
    trie = PrefixTrie()
    model = {}
    for serial, (op, prefix) in enumerate(ops):
        if op == "insert":
            fresh = trie.insert(prefix, serial)
            assert fresh == (prefix not in model)
            model[prefix] = serial
        else:
            if prefix in model:
                assert trie.delete(prefix) == model.pop(prefix)
            else:
                with pytest.raises(KeyError):
                    trie.delete(prefix)
    return trie, model


def brute_longest_match(model, prefix):
    best = None
    for stored, value in model.items():
        if stored.contains(prefix):
            if best is None or stored.length > best[0].length:
                best = (stored, value)
    return best


class TestAgainstDictModel:
    @given(operations)
    @settings(max_examples=200)
    def test_point_lookups_agree(self, ops):
        trie, model = replay(ops)
        assert len(trie) == len(model)
        for prefix, value in model.items():
            assert prefix in trie
            assert trie.get(prefix) == value
            assert trie[prefix] == value

    @given(operations)
    def test_iteration_is_sorted_and_complete(self, ops):
        trie, model = replay(ops)
        items = list(trie.items())
        assert dict(items) == model
        keys = [prefix for prefix, _value in items]
        assert keys == sorted(model, key=lambda p: (p.addr, p.length))
        assert list(trie) == keys

    @given(operations, prefixes())
    def test_longest_match_agrees_with_brute_force(self, ops, probe):
        trie, model = replay(ops)
        assert trie.longest_match(probe) == brute_longest_match(model, probe)

    @given(operations, prefixes(max_length=12))
    def test_covered_agrees_with_brute_force(self, ops, probe):
        trie, model = replay(ops)
        expected = sorted(
            ((stored, value) for stored, value in model.items() if probe.contains(stored)),
            key=lambda item: (item[0].addr, item[0].length),
        )
        assert list(trie.covered(probe)) == expected

    @given(operations)
    def test_delete_all_leaves_an_empty_trie(self, ops):
        trie, model = replay(ops)
        for prefix in list(model):
            trie.delete(prefix)
        assert len(trie) == 0
        assert not trie
        assert list(trie.items()) == []
        # The root must have been pruned back to a bare node: a fresh
        # insert works and longest-match sees nothing stale.
        assert trie.longest_match(make_prefix(0, 0)) is None


class TestMappingProtocol:
    def test_setitem_getitem_delitem(self):
        trie = PrefixTrie()
        p = make_prefix(0x0A000000, 8)
        trie[p] = "v"
        assert trie[p] == "v"
        del trie[p]
        with pytest.raises(KeyError):
            trie[p]

    def test_get_default(self):
        assert PrefixTrie().get(make_prefix(0, 0), "d") == "d"

    def test_value_overwrite_keeps_size(self):
        trie = PrefixTrie()
        p = make_prefix(0x0A000000, 8)
        assert trie.insert(p, 1)
        assert not trie.insert(p, 2)
        assert len(trie) == 1 and trie[p] == 2

    def test_root_value_default_route(self):
        trie = PrefixTrie()
        default = make_prefix(0, 0)
        trie.insert(default, "default")
        host = make_prefix(0x01020304, 32)
        assert trie.longest_match(host) == (default, "default")
        trie.insert(host, "host")
        assert trie.longest_match(host) == (host, "host")
