"""Extension bench: continuous workload and monitor burstiness (Sec. 1).

The paper motivates churn scalability with two monitor-side facts: update
rates grow with the network, and the stream is extremely bursty ("peak
update rates up to 1000 times higher than the daily averages").  This
bench drives a Poisson C-event stream with intensity proportional to the
stub population across two network sizes and checks both directions:
the monitor's mean update rate grows with n, and the binned rate series
is peaky (peak ≫ mean).
"""

from repro.bgp.config import BGPConfig
from repro.core.workload import WorkloadSpec, run_workload
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.005)
SIZES = (200, 400)
#: per-stub flap intensity: events/second = RATE_PER_STUB * n_C
RATE_PER_STUB = 2.5e-4


def _run(n: int):
    graph = generate_topology(baseline_params(n), seed=21)
    c_count = len(graph.nodes_of_type(NodeType.C))
    spec = WorkloadSpec(
        duration=600.0,
        event_rate=RATE_PER_STUB * c_count,
        mean_downtime=30.0,
    )
    return run_workload(graph, spec, FAST, seed=21)


def test_monitor_rate_grows_with_network(benchmark):
    results = benchmark.pedantic(
        lambda: [_run(n) for n in SIZES], rounds=1, iterations=1
    )
    rates = []
    for result in results:
        monitor = result.monitors[0]
        rate = result.monitor_rate(monitor)
        report = result.burstiness(monitor, bin_width=30.0)
        rates.append(rate)
        print(
            f"\nn={result.n}: monitor {monitor} mean {rate:.3f} upd/s, "
            f"peak {report.peak_rate:.2f} upd/s ({report.peak_to_mean:.1f}x mean), "
            f"{result.events_executed} events"
        )
        assert report.peak_to_mean > 2.0  # bursty, as in Sec. 1
    assert rates[-1] > rates[0]  # churn rate grows with the network
