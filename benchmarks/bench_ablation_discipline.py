"""Ablation: the out-queue send discipline (DESIGN.md call-out).

The paper's node model is delay-first ("outgoing messages are stored in
an output queue until the MRAI timer for that queue expires"), which is
what suppresses path exploration under NO-WRATE.  Real routers are
typically send-first.  This ablation quantifies how much of the paper's
clean e ≈ 2 behaviour depends on that modelling choice: send-first leaks
alternate-path announcements ahead of the withdrawal wave, inflating
churn even without WRATE.
"""

import pytest

from repro.bgp.config import BGPConfig, SendDiscipline
from repro.core.cevent import run_c_event_experiment
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType, Relationship

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


@pytest.mark.parametrize("discipline", list(SendDiscipline), ids=lambda d: d.value)
def test_discipline_churn(benchmark, discipline):
    graph = generate_topology(baseline_params(300), seed=6)
    config = FAST.replace(discipline=discipline)
    stats = benchmark.pedantic(
        lambda: run_c_event_experiment(graph, config, num_origins=4, seed=6),
        rounds=1,
        iterations=1,
    )
    e_d_m = stats.factors(NodeType.M).e(Relationship.PROVIDER)
    print(
        f"\n[{discipline.value}] U(T)={stats.u(NodeType.T):.2f} "
        f"ed,M={e_d_m:.2f} down-convergence={stats.mean_down_convergence:.1f}s"
    )
    if discipline is SendDiscipline.DELAY_FIRST:
        assert e_d_m == pytest.approx(2.0, abs=0.3)


def test_send_first_inflates_churn():
    """Direct comparison: send-first produces at least as many updates."""
    graph = generate_topology(baseline_params(300), seed=6)
    delay = run_c_event_experiment(
        graph, FAST.replace(discipline=SendDiscipline.DELAY_FIRST),
        num_origins=4, seed=6,
    )
    send = run_c_event_experiment(
        graph, FAST.replace(discipline=SendDiscipline.SEND_FIRST),
        num_origins=4, seed=6,
    )
    assert send.measured_messages >= delay.measured_messages
