"""Ablation: route-flap damping (the paper's future-work mechanism).

A stub prefix flaps every 20 s (a genuine flap storm — flaps must arrive
faster than the RFC 2439 penalty decays).  With damping enabled, upstream
neighbours suppress the flapping route after a couple of cycles, cutting
the updates that reach the rest of the network; with damping off, every
flap propagates globally.
"""

import pytest

from repro.bgp.config import BGPConfig, DampingConfig
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FLAPS = 8
FLAP_PERIOD = 20.0


def flap_storm(damping_enabled: bool) -> int:
    """Updates delivered network-wide during the storm window."""
    graph = generate_topology(baseline_params(250), seed=7)
    origin = graph.nodes_of_type(NodeType.C)[0]
    damping = DampingConfig(
        enabled=damping_enabled,
        suppress_threshold=2.0,
        reuse_threshold=0.75,
        half_life=600.0,
    )
    config = BGPConfig(
        mrai=2.0, link_delay=0.001, processing_time_max=0.01, damping=damping
    )
    network = SimNetwork(graph, config, seed=7)
    network.originate(origin, 0)
    network.run_to_convergence()
    network.start_counting()
    start = network.engine.now
    for k in range(FLAPS):
        network.engine.schedule_at(
            start + k * FLAP_PERIOD, lambda: network.withdraw(origin, 0)
        )
        network.engine.schedule_at(
            start + k * FLAP_PERIOD + FLAP_PERIOD / 2,
            lambda: network.originate(origin, 0),
        )
    network.engine.run(until=start + FLAPS * FLAP_PERIOD + 60.0)
    return network.counter.total


@pytest.mark.parametrize("enabled", [False, True], ids=["off", "on"])
def test_damping_flap_storm(benchmark, enabled):
    total = benchmark.pedantic(
        lambda: flap_storm(enabled), rounds=1, iterations=1
    )
    print(
        f"\n[damping={'on' if enabled else 'off'}] updates during "
        f"{FLAPS}-flap storm: {total}"
    )
    assert total > 0


def test_damping_reduces_flap_churn():
    """Suppression must cut the update volume of a flap storm hard."""
    damped = flap_storm(True)
    undamped = flap_storm(False)
    assert damped < 0.8 * undamped
