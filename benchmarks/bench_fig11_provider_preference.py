"""Bench: regenerate Fig. 11 — provider preference and T-node churn.

Paper shape: buying transit from mid-tier providers (PREFER-MIDDLE)
maximizes tier-1 churn; direct-to-T attachment (PREFER-TOP) hands T
nodes far more customers (mc,T) but qc,T collapses and offsets the gain.
The strict U(T) ordering needs paper-scale multihoming; the mechanism
checks hold at every scale (see EXPERIMENTS.md).
"""


def test_fig11_provider_preference(run_figure):
    result = run_figure("fig11")
    assert result.passed, result.to_text()
    assert result.series["mc,T PREFER-TOP"][-1] > result.series["mc,T PREFER-MIDDLE"][-1]
    assert result.series["qc,T PREFER-TOP"][-1] < result.series["qc,T PREFER-MIDDLE"][-1]
