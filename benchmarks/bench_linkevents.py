"""Bench: link-failure events (the paper's "more complex events").

Fails and restores provider links of a multihomed stub and measures the
churn reaching each node class.  Compared with a full C-event, a failure
with a backup path must churn the tier-1 core less: the prefix never
disappears globally, so only the affected subtree re-routes.
"""

from repro.bgp.config import BGPConfig
from repro.core.cevent import run_c_event_experiment
from repro.core.linkevent import run_link_event_experiment
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def _multihomed_origin(graph):
    for origin in graph.nodes_of_type(NodeType.C):
        if len(graph.providers_of(origin)) >= 2:
            return origin
    raise AssertionError("no multihomed C stub in this instance")


def test_link_event_churn(benchmark):
    graph = generate_topology(baseline_params(300), seed=8)
    origin = _multihomed_origin(graph)
    stats = benchmark.pedantic(
        lambda: run_link_event_experiment(
            graph, FAST, origin=origin, num_links=2, seed=8
        ),
        rounds=1,
        iterations=1,
    )
    print(
        "\nlink-event churn: "
        + ", ".join(
            f"U({t.value})={stats.u(t):.2f}" for t in stats.per_type
        )
    )
    assert stats.mean_down_convergence > 0


def test_backup_path_failure_churns_core_less_than_c_event():
    graph = generate_topology(baseline_params(300), seed=8)
    origin = _multihomed_origin(graph)
    provider = graph.providers_of(origin)[0]
    link_stats = run_link_event_experiment(
        graph, FAST, origin=origin, links=[(origin, provider)], seed=8
    )
    c_stats = run_c_event_experiment(graph, FAST, origins=[origin], seed=8)
    assert link_stats.u(NodeType.T) <= c_stats.u(NodeType.T)
