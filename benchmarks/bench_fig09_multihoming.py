"""Bench: regenerate Fig. 9 — the multihoming degree and T-node churn.

Paper shape: DENSE-CORE ≫ DENSE-EDGE > BASELINE; TREE pinned at exactly
2 updates per C-event; CONSTANT-MHD roughly flat; core multihoming
inflates qc,T more than edge multihoming.
"""


def test_fig09_multihoming(run_figure):
    result = run_figure("fig09")
    assert result.passed, result.to_text()
    assert result.series["U(T) DENSE-CORE"][-1] > result.series["U(T) BASELINE"][-1]
