"""Extension bench: churn concentration across nodes.

Quantifies two observations from the paper and its ref [5] (Broido et
al.): churn varies strongly across nodes of the same type (heavy-tailed
degrees), and a small fraction of ASes carries a disproportionate share
of all updates.
"""

from repro.bgp.config import BGPConfig
from repro.core.cevent import run_c_event_experiment
from repro.core.heterogeneity import churn_heterogeneity
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def test_churn_concentration(benchmark):
    graph = generate_topology(baseline_params(400), seed=61)
    stats = benchmark.pedantic(
        lambda: run_c_event_experiment(graph, FAST, num_origins=8, seed=61),
        rounds=1,
        iterations=1,
    )
    reports = churn_heterogeneity(stats)
    print("\nchurn concentration per node type:")
    for node_type, report in reports.items():
        print(
            f"  {node_type.value:2s}: gini={report.gini:.2f}  "
            f"top-10% share={report.top_10_percent_share * 100:.0f}%  "
            f"max/mean={report.max_to_mean:.1f}"
        )
    m_report = reports[NodeType.M]
    # heavy-tailed attachment concentrates churn well beyond uniform
    assert m_report.gini > 0.15
    assert m_report.top_10_percent_share > 0.15
