"""Bench: regenerate Fig. 1 — churn trend at a monitor (Mann–Kendall).

Paper: daily updates at a France Telecom RIS monitor grew ≈ 200 % over
2005–2007 under heavy burstiness; the trend is estimated with the
Mann–Kendall test.  We run the identical analysis pipeline on the
calibrated synthetic series (substitution documented in DESIGN.md).
"""


def test_fig01_churn_trend(run_figure):
    result = run_figure("fig01")
    assert result.passed, result.to_text()
    # trend present and in the calibrated range
    monthly = next(iter(result.series.values()))
    assert monthly[-1] > monthly[0]
