"""Bench: regenerate Fig. 10 — peering relations and M-node churn.

Paper shape: the peering degree does not cause a significant change in
churn; NO-PEERING, BASELINE, STRONG-CORE-PEERING and STRONG-EDGE-PEERING
all coincide (updates cross peering links only for customer routes, with
customer-only export scope).
"""


def test_fig10_peering(run_figure):
    result = run_figure("fig10")
    assert result.passed, result.to_text()
