"""Performance benchmarks of the library's building blocks.

Not paper artifacts — these track the cost of the topology generator, the
event kernel and a full C-event, so regressions in the hot paths show up
in ``pytest benchmarks/ --benchmark-only``.
"""

from repro.bgp.config import BGPConfig
from repro.core.cevent import run_c_event_experiment
from repro.core.reference import steady_state_routes
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def test_topology_generation_n1000(benchmark):
    """Generator throughput at n=1000 (Table-1 Baseline)."""
    graph = benchmark(lambda: generate_topology(baseline_params(1000), seed=1))
    assert len(graph) == 1000


def test_engine_event_throughput(benchmark):
    """Raw kernel: schedule+execute 50k chained events."""

    def run():
        engine = Engine()
        remaining = [50_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return engine.executed_events

    executed = benchmark(run)
    assert executed == 50_001


def test_single_c_event_n400(benchmark):
    """One full C-event (warm-up + DOWN + UP) on a 400-node Baseline."""
    graph = generate_topology(baseline_params(400), seed=2)

    def run():
        return run_c_event_experiment(graph, FAST, num_origins=1, seed=2)

    stats = benchmark(run)
    assert stats.measured_messages > 0


def test_announcement_flood_n400(benchmark):
    """Initial announcement convergence on a fresh 400-node network."""
    graph = generate_topology(baseline_params(400), seed=3)
    origin = graph.nodes_of_type(NodeType.C)[0]

    def run():
        network = SimNetwork(graph, FAST, seed=3)
        network.originate(origin, 0)
        network.run_to_convergence()
        return network.delivered_messages

    delivered = benchmark(run)
    assert delivered > 400


def test_oracle_n1000(benchmark):
    """Steady-state oracle on a 1000-node topology."""
    graph = generate_topology(baseline_params(1000), seed=4)
    origin = graph.nodes_of_type(NodeType.C)[0]
    routes = benchmark(lambda: steady_state_routes(graph, origin))
    assert len(routes) > 900
