"""Performance benchmarks of the library's building blocks.

Not paper artifacts — these track the cost of the topology generator, the
event kernel, a full C-event and the parallel sweep executor, so
regressions in the hot paths show up in
``pytest benchmarks/ --benchmark-only``.
"""

import json
import os
import time

from repro.bgp.config import BGPConfig
from repro.core.cevent import run_c_event_experiment
from repro.core.reference import steady_state_routes
from repro.core.sweep import run_growth_sweep
from repro.experiments.results_io import sweep_result_to_dict
from repro.obs.telemetry import Telemetry, telemetry_session
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)

#: Workers for the sweep-parallelism benchmark: one per available core,
#: capped at 4 — on a single-core box the executor degrades to serial
#: rather than benchmarking pure scheduling contention.
SWEEP_JOBS = max(
    1,
    min(
        4,
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1),
    ),
)


def test_topology_generation_n1000(benchmark):
    """Generator throughput at n=1000 (Table-1 Baseline)."""
    graph = benchmark(lambda: generate_topology(baseline_params(1000), seed=1))
    assert len(graph) == 1000


def test_engine_event_throughput(benchmark):
    """Raw kernel: schedule+execute 50k chained events."""

    def run():
        engine = Engine()
        remaining = [50_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return engine.executed_events

    executed = benchmark(run)
    assert executed == 50_001


def test_single_c_event_n400(benchmark):
    """One full C-event (warm-up + DOWN + UP) on a 400-node Baseline."""
    graph = generate_topology(baseline_params(400), seed=2)

    def run():
        return run_c_event_experiment(graph, FAST, num_origins=1, seed=2)

    stats = benchmark(run)
    assert stats.measured_messages > 0


def test_announcement_flood_n400(benchmark):
    """Initial announcement convergence on a fresh 400-node network."""
    graph = generate_topology(baseline_params(400), seed=3)
    origin = graph.nodes_of_type(NodeType.C)[0]

    def run():
        network = SimNetwork(graph, FAST, seed=3)
        network.originate(origin, 0)
        network.run_to_convergence()
        return network.delivered_messages

    delivered = benchmark(run)
    assert delivered > 400


def test_sweep_parallel_speedup(benchmark, results_dir):
    """Parallel sweep executor vs serial on one small Baseline sweep.

    Asserts the bit-identical guarantee (same numbers from both paths)
    and records the measured speedup under ``benchmark_results/``.
    """
    kwargs = dict(
        sizes=(300, 400, 500), config=FAST, num_origins=6, seed=7, origin_batch_size=2
    )

    started = time.perf_counter()
    serial = run_growth_sweep("BASELINE", jobs=1, **kwargs)
    serial_seconds = time.perf_counter() - started

    timings = []

    def timed_parallel():
        t0 = time.perf_counter()
        result = run_growth_sweep("BASELINE", jobs=SWEEP_JOBS, **kwargs)
        timings.append(time.perf_counter() - t0)
        return result

    parallel = benchmark.pedantic(timed_parallel, rounds=1, iterations=1)
    parallel_seconds = timings[-1]

    def measured(sweep):
        data = sweep_result_to_dict(sweep)
        for stats in data["stats"]:
            del stats["wall_clock_seconds"]  # the only nondeterministic field
        return data

    assert measured(parallel) == measured(serial)
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    payload = {
        "jobs": SWEEP_JOBS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
    }
    (results_dir / "sweep_parallelism.json").write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )
    print(f"\nsweep parallelism: {speedup:.2f}x with {SWEEP_JOBS} jobs")


def test_sim_core_telemetry(benchmark, results_dir):
    """Telemetry cost on the simulation core: disabled vs enabled.

    The disabled path is the null-object hub, so its cost must stay in
    the noise; the enabled path additionally yields the per-phase
    wall-clock/event breakdown.  Both throughputs and the phase table
    are recorded in ``BENCH_sim_core.json`` so the CI perf-smoke job can
    archive them.
    """
    graph = generate_topology(baseline_params(400), seed=5)
    rounds = 3

    def run_disabled():
        return run_c_event_experiment(graph, FAST, num_origins=1, seed=5)

    def run_enabled():
        hub = Telemetry(meta={"run_kind": "bench", "benchmark": "sim_core"})
        with telemetry_session(hub):
            run_c_event_experiment(graph, FAST, num_origins=1, seed=5)
        return hub

    run_disabled()  # warm caches so both timed paths start equal
    started = time.perf_counter()
    for _ in range(rounds):
        run_disabled()
    disabled_seconds = (time.perf_counter() - started) / rounds

    timings = []

    def timed_enabled():
        t0 = time.perf_counter()
        hub = run_enabled()
        timings.append(time.perf_counter() - t0)
        return hub

    hub = benchmark.pedantic(timed_enabled, rounds=rounds, iterations=1)
    enabled_seconds = sum(timings) / len(timings)

    snapshot = hub.snapshot()
    overhead_pct = (
        (enabled_seconds - disabled_seconds) / disabled_seconds * 100.0
        if disabled_seconds > 0
        else 0.0
    )
    payload = {
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead_pct": overhead_pct,
        "events_per_sec": snapshot["summary"]["events_per_sec"],
        "engine_events": snapshot["summary"]["engine_events"],
        "phases": snapshot["phases"],
    }
    (results_dir / "BENCH_sim_core.json").write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )
    print(
        f"\nsim core telemetry: {snapshot['summary']['events_per_sec']:.0f} "
        f"events/sec enabled, overhead {overhead_pct:+.1f}%"
    )
    assert {phase["name"] for phase in snapshot["phases"]} == {"warmup", "measured"}
    # Guard against accidental per-event instrumentation (which costs
    # ~20%+); the expected overhead is a run()-boundary sample, well
    # under this deliberately loose, CI-noise-tolerant bound.
    assert overhead_pct < 50.0


def test_oracle_n1000(benchmark):
    """Steady-state oracle on a 1000-node topology."""
    graph = generate_topology(baseline_params(1000), seed=4)
    origin = graph.nodes_of_type(NodeType.C)[0]
    routes = benchmark(lambda: steady_state_routes(graph, origin))
    assert len(routes) > 900
