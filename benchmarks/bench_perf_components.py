"""Performance benchmarks of the library's building blocks.

Not paper artifacts — these track the cost of the topology generator, the
event kernel, a full C-event and the parallel sweep executor, so
regressions in the hot paths show up in
``pytest benchmarks/ --benchmark-only``.
"""

import json
import os
import random
import sys
import time

from repro.bgp.config import BGPConfig, DampingConfig, MRAIMode
from repro.bgp.node import BGPNode
from repro.bgp.route import Route, best_route, clear_intern_caches, import_route
from repro.core.cevent import run_c_event_experiment
from repro.core.prefix_churn import build_allocation, run_prefix_churn
from repro.core.reference import steady_state_routes
from repro.core.sweep import run_growth_sweep
from repro.prefix.prefix import make_prefix
from repro.prefix.trie import PrefixTrie
from repro.prefix.workload import PrefixChurnSpec
from repro.experiments.results_io import sweep_result_to_dict
from repro.obs.telemetry import Telemetry, telemetry_session
from repro.sim.engine import Engine
from repro.sim.network import SimNetwork
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType, Relationship

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def _merge_bench_json(results_dir, payload: dict) -> None:
    """Merge ``payload`` into ``BENCH_sim_core.json`` (shared by two tests)."""
    out = results_dir / "BENCH_sim_core.json"
    existing = {}
    if out.exists():
        try:
            existing = json.loads(out.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            existing = {}
    existing.update(payload)
    out.write_text(json.dumps(existing, indent=1) + "\n", encoding="utf-8")

#: Workers for the sweep-parallelism benchmark: one per available core,
#: capped at 4 — on a single-core box the executor degrades to serial
#: rather than benchmarking pure scheduling contention.
SWEEP_JOBS = max(
    1,
    min(
        4,
        len(os.sched_getaffinity(0))
        if hasattr(os, "sched_getaffinity")
        else (os.cpu_count() or 1),
    ),
)


def test_topology_generation_n1000(benchmark):
    """Generator throughput at n=1000 (Table-1 Baseline)."""
    graph = benchmark(lambda: generate_topology(baseline_params(1000), seed=1))
    assert len(graph) == 1000


def test_engine_event_throughput(benchmark):
    """Raw kernel: schedule+execute 50k chained events."""

    def run():
        engine = Engine()
        remaining = [50_000]

        def tick():
            if remaining[0] > 0:
                remaining[0] -= 1
                engine.schedule(0.001, tick)

        engine.schedule(0.0, tick)
        engine.run()
        return engine.executed_events

    executed = benchmark(run)
    assert executed == 50_001


def test_single_c_event_n400(benchmark):
    """One full C-event (warm-up + DOWN + UP) on a 400-node Baseline."""
    graph = generate_topology(baseline_params(400), seed=2)

    def run():
        return run_c_event_experiment(graph, FAST, num_origins=1, seed=2)

    stats = benchmark(run)
    assert stats.measured_messages > 0


def test_announcement_flood_n400(benchmark):
    """Initial announcement convergence on a fresh 400-node network."""
    graph = generate_topology(baseline_params(400), seed=3)
    origin = graph.nodes_of_type(NodeType.C)[0]

    def run():
        network = SimNetwork(graph, FAST, seed=3)
        network.originate(origin, 0)
        network.run_to_convergence()
        return network.delivered_messages

    delivered = benchmark(run)
    assert delivered > 400


def test_sweep_parallel_speedup(benchmark, results_dir):
    """Parallel sweep executor vs serial on one small Baseline sweep.

    Asserts the bit-identical guarantee (same numbers from both paths)
    and records the measured speedup under ``benchmark_results/``.
    """
    kwargs = dict(
        sizes=(300, 400, 500), config=FAST, num_origins=6, seed=7, origin_batch_size=2
    )

    started = time.perf_counter()
    serial = run_growth_sweep("BASELINE", jobs=1, **kwargs)
    serial_seconds = time.perf_counter() - started

    timings = []

    def timed_parallel():
        t0 = time.perf_counter()
        result = run_growth_sweep("BASELINE", jobs=SWEEP_JOBS, **kwargs)
        timings.append(time.perf_counter() - t0)
        return result

    parallel = benchmark.pedantic(timed_parallel, rounds=1, iterations=1)
    parallel_seconds = timings[-1]

    def measured(sweep):
        data = sweep_result_to_dict(sweep)
        for stats in data["stats"]:
            del stats["wall_clock_seconds"]  # the only nondeterministic field
        return data

    assert measured(parallel) == measured(serial)
    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else 0.0
    payload = {
        "jobs": SWEEP_JOBS,
        "serial_seconds": serial_seconds,
        "parallel_seconds": parallel_seconds,
        "speedup": speedup,
    }
    (results_dir / "sweep_parallelism.json").write_text(
        json.dumps(payload, indent=1) + "\n", encoding="utf-8"
    )
    print(f"\nsweep parallelism: {speedup:.2f}x with {SWEEP_JOBS} jobs")


def test_sim_core_telemetry(benchmark, results_dir):
    """Telemetry cost on the simulation core: disabled vs enabled.

    The disabled path is the null-object hub, so its cost must stay in
    the noise; the enabled path additionally yields the per-phase
    wall-clock/event breakdown.  Both throughputs and the phase table
    are recorded in ``BENCH_sim_core.json`` so the CI perf-smoke job can
    archive them.
    """
    graph = generate_topology(baseline_params(400), seed=5)
    rounds = 3

    def run_disabled():
        return run_c_event_experiment(graph, FAST, num_origins=1, seed=5)

    def run_enabled():
        hub = Telemetry(meta={"run_kind": "bench", "benchmark": "sim_core"})
        with telemetry_session(hub):
            run_c_event_experiment(graph, FAST, num_origins=1, seed=5)
        return hub

    run_disabled()  # warm caches so both timed paths start equal
    started = time.perf_counter()
    for _ in range(rounds):
        run_disabled()
    disabled_seconds = (time.perf_counter() - started) / rounds

    timings = []

    def timed_enabled():
        t0 = time.perf_counter()
        hub = run_enabled()
        timings.append(time.perf_counter() - t0)
        return hub

    hub = benchmark.pedantic(timed_enabled, rounds=rounds, iterations=1)
    enabled_seconds = sum(timings) / len(timings)

    snapshot = hub.snapshot()
    overhead_pct = (
        (enabled_seconds - disabled_seconds) / disabled_seconds * 100.0
        if disabled_seconds > 0
        else 0.0
    )
    payload = {
        "disabled_seconds": disabled_seconds,
        "enabled_seconds": enabled_seconds,
        "enabled_overhead_pct": overhead_pct,
        "events_per_sec": snapshot["summary"]["events_per_sec"],
        "engine_events": snapshot["summary"]["engine_events"],
        "phases": snapshot["phases"],
    }
    _merge_bench_json(results_dir, payload)
    print(
        f"\nsim core telemetry: {snapshot['summary']['events_per_sec']:.0f} "
        f"events/sec enabled, overhead {overhead_pct:+.1f}%"
    )
    assert {phase["name"] for phase in snapshot["phases"]} == {"warmup", "measured"}
    # Guard against accidental per-event instrumentation (which costs
    # ~20%+); the expected overhead is a run()-boundary sample, well
    # under this deliberately loose, CI-noise-tolerant bound.
    assert overhead_pct < 50.0


def _time_per_call_us(fn, rounds: int) -> float:
    t0 = time.perf_counter()
    for _ in range(rounds):
        fn()
    return (time.perf_counter() - t0) / rounds * 1e6


def test_sim_core_budget(results_dir):
    """Per-op cost budget table for the simulation kernel.

    Measures the unit costs the ROADMAP budgets (best-path µs, decision
    µs, route bytes, events/s) plus the *deterministic* event-economy
    counters of the supersession fixes, and merges everything into
    ``BENCH_sim_core.json``.  The CI perf-smoke job diffs that file
    against the committed baseline (``benchmarks/baselines/``) via
    ``scripts/check_perf_budget.py``: counters exactly, timings within a
    tolerance band.  Regenerate with::

        PYTHONPATH=src python -m pytest \
            benchmarks/bench_perf_components.py::test_sim_core_budget \
            -q --benchmark-disable
    """
    rounds = 20_000

    # --- best-path selection -----------------------------------------
    # Warm: the steady-state cost once routes are interned and their
    # preference keys memoized (the sim's actual hot-path regime).
    clear_intern_caches()
    cands = [
        import_route(0, (10 + i, 20 + i, 30 + i, 40 + i), Relationship.PEER)
        for i in range(5)
    ]
    best_route(cands, 7)  # populate the per-receiver key memos
    best_warm_us = _time_per_call_us(lambda: best_route(cands, 7), rounds)

    # Cold: construction plus first key computation (fresh objects each
    # call, bypassing the intern table) — bounds the one-time cost.
    def cold_once():
        fresh = [
            Route(prefix=0, path=(10 + i, 20 + i, 30 + i, 40 + i), local_pref=90)
            for i in range(5)
        ]
        best_route(fresh, 7)

    best_cold_us = _time_per_call_us(cold_once, 2_000)

    # --- decision process --------------------------------------------
    graph = generate_topology(baseline_params(200), seed=3)
    network = SimNetwork(graph, FAST, seed=3)
    origin = [n for n in graph.node_ids if not graph.customers_of(n)][0]
    network.originate(origin, 0)
    network.run_to_convergence()
    node = max(
        network.nodes.values(), key=lambda n: len(n.adj_rib_in.candidates(0))
    )
    now = network.engine.now
    decision_full_us = _time_per_call_us(lambda: node._run_decision(0, now), rounds)

    current_best = node.loc_rib.best(0)
    non_best = next(
        route for _, route in node.adj_rib_in.candidates(0) if route != current_best
    )
    decision_incremental_us = _time_per_call_us(
        lambda: node._run_decision_incremental(0, non_best, non_best, now), rounds
    )

    # --- per-route memory --------------------------------------------
    route = cands[0]
    route_bytes = sys.getsizeof(route)
    path_bytes = sys.getsizeof(route.path)  # shared across interned copies

    # --- raw event throughput ----------------------------------------
    engine = Engine()
    remaining = [100_000]

    def tick():
        if remaining[0] > 0:
            remaining[0] -= 1
            engine.schedule(0.001, tick)

    engine.schedule(0.0, tick)
    t0 = time.perf_counter()
    engine.run()
    events_per_sec = engine.executed_events / (time.perf_counter() - t0)

    # --- MRAI wakeup supersession (deterministic, no timing) ----------
    # Each _schedule_wakeup call supersedes the previous (strictly
    # earlier wakeup); pre-fix every superseded event still executed as
    # a no-op, so the old kernel's executed count equals `scheduled`.
    sup_engine = Engine()
    sup_node = BGPNode(
        node_id=1,
        node_type=NodeType.C,
        neighbors={2: Relationship.PEER},
        engine=sup_engine,
        config=FAST,
        rng=random.Random(0),
        transmit=lambda message, at: None,
    )
    scheduled = 200
    for i in range(scheduled):
        sup_node._schedule_wakeup(2, 100.0 - i * 0.25)
    sup_engine.run()
    supersession = {
        "scheduled": scheduled,
        "executed": sup_engine.executed_events,
        "cancelled": sup_engine.cancelled_events,
        "executed_pre_fix": scheduled,
    }
    assert supersession["executed"] * 2 <= scheduled, (
        "stale-wakeup fix must cut executed heap events by >= 2x"
    )

    # --- realistic per-prefix WRATE churn (deterministic counters) ----
    churn_cfg = BGPConfig(
        mrai=2.0,
        wrate=True,
        mrai_mode=MRAIMode.PER_PREFIX,
        link_delay=0.001,
        processing_time_max=0.01,
    )
    churn_graph = generate_topology(baseline_params(150), seed=6)
    churn_net = SimNetwork(churn_graph, churn_cfg, seed=6)
    stubs = [n for n in churn_graph.node_ids if not churn_graph.customers_of(n)]
    origins = stubs[:4]
    for prefix, node_id in enumerate(origins):
        churn_net.originate(node_id, prefix)
    churn_net.run_to_convergence()
    for _ in range(2):
        for prefix, node_id in enumerate(origins):
            churn_net.withdraw(node_id, prefix)
        churn_net.run_to_convergence()
        for prefix, node_id in enumerate(origins):
            churn_net.originate(node_id, prefix)
        churn_net.run_to_convergence()
    churn = {
        "executed_events": churn_net.engine.executed_events,
        "delivered_messages": churn_net.delivered_messages,
        "cancelled_events": churn_net.engine.cancelled_events,
    }

    # --- damping reuse-check dedupe (deterministic counters) ----------
    damp_cfg = BGPConfig(
        mrai=2.0,
        link_delay=0.001,
        processing_time_max=0.01,
        damping=DampingConfig(
            enabled=True,
            suppress_threshold=1.5,
            reuse_threshold=0.5,
            half_life=5.0,
        ),
    )
    damp_graph = generate_topology(baseline_params(100), seed=8)
    damp_net = SimNetwork(damp_graph, damp_cfg, seed=8)
    damp_origin = [n for n in damp_graph.node_ids if not damp_graph.customers_of(n)][0]
    damp_net.originate(damp_origin, 0)
    damp_net.run_to_convergence()
    for _ in range(3):
        damp_net.withdraw(damp_origin, 0)
        damp_net.run_to_convergence()
        damp_net.originate(damp_origin, 0)
        damp_net.run_to_convergence()
    damping = {
        "executed_events": damp_net.engine.executed_events,
        "cancelled_events": damp_net.engine.cancelled_events,
    }

    # --- radix trie per-op costs (the multi-prefix table axis) --------
    # 10k /24 prefixes: insert cost amortized over the full build, then
    # longest-match probes against /32 host addresses inside the table.
    table_size = 10_000
    trie_prefixes = [make_prefix(index << 8, 24) for index in range(table_size)]

    def build_trie():
        trie = PrefixTrie()
        for index, prefix in enumerate(trie_prefixes):
            trie.insert(prefix, index)
        return trie

    t0 = time.perf_counter()
    trie = build_trie()
    trie_insert_us = (time.perf_counter() - t0) / table_size * 1e6
    probes = [make_prefix((index << 8) | 7, 32) for index in range(0, table_size, 100)]

    def probe_all():
        for probe in probes:
            trie.longest_match(probe)

    trie_match_us = _time_per_call_us(probe_all, 200) / len(probes)

    # Incremental re-decide with 1 dirty prefix out of a 10k-entry table:
    # the dirty-set design makes this independent of the table size, so
    # its budget is the proof that multi-prefix events stay cheap.
    radix_cfg = BGPConfig(
        mrai=2.0, link_delay=0.001, processing_time_max=0.01, rib_backend="radix"
    )
    rib_node = BGPNode(
        node_id=1,
        node_type=NodeType.C,
        neighbors={2: Relationship.PEER, 3: Relationship.PROVIDER},
        engine=Engine(),
        config=radix_cfg,
        rng=random.Random(0),
        transmit=lambda message, at: None,
    )
    for index, prefix in enumerate(trie_prefixes):
        route = import_route(prefix, (2, 100 + (index % 50)), Relationship.PEER)
        rib_node.adj_rib_in.update(prefix, 2, route)
        rib_node.loc_rib.install(prefix, route)
        rib_node.adj_rib_in.clear_dirty(prefix)
    dirty_prefix = trie_prefixes[table_size // 2]
    dirty_route = rib_node.loc_rib.best(dirty_prefix)
    redecide_us = _time_per_call_us(
        lambda: rib_node._run_decision_incremental(
            dirty_prefix, dirty_route, dirty_route, 0.0
        ),
        rounds,
    )

    # --- multi-prefix churn (deterministic counters + backend parity) -
    pc_graph = generate_topology(baseline_params(120), seed=9)
    pc_alloc = build_allocation(pc_graph, 40, num_origins=8, seed=9)
    pc_spec = PrefixChurnSpec(
        duration=300.0,
        event_rate=0.05,
        mean_downtime=30.0,
        deaggregation_probability=0.2,
    )
    pc_results = {}
    for backend in ("dict", "radix"):
        pc_cfg = BGPConfig(
            mrai=2.0,
            link_delay=0.001,
            processing_time_max=0.01,
            rib_backend=backend,
        )
        pc_results[backend] = run_prefix_churn(
            pc_graph, pc_alloc, pc_spec, pc_cfg, seed=9
        )
    pc = pc_results["radix"]
    assert pc.loc_rib_digest == pc_results["dict"].loc_rib_digest, (
        "radix and dict RIB backends diverged on the fixed-seed workload"
    )
    prefix_churn = {
        "events_executed": pc.events_executed,
        "total_updates": pc.total_updates,
        "decisions_run": pc.decisions_run,
        "decisions_skipped": pc.decisions_skipped,
        "loc_rib_digest": pc.loc_rib_digest,
    }
    assert pc.decisions_skipped > 10 * pc.decisions_run, (
        "per-prefix dirty tracking must skip far more decisions than it runs"
    )

    payload = {
        "per_op": {
            "best_path_us_warm": best_warm_us,
            "best_path_us_cold": best_cold_us,
            "decision_full_us": decision_full_us,
            "decision_incremental_us": decision_incremental_us,
            "decision_candidates": len(node.adj_rib_in.candidates(0)),
            "route_bytes": route_bytes,
            "path_bytes_shared": path_bytes,
            "events_per_sec": events_per_sec,
        },
        "prefix_per_op": {
            "trie_insert_us": trie_insert_us,
            "trie_longest_match_us": trie_match_us,
            "redecide_1_of_10k_us": redecide_us,
            "table_size": table_size,
        },
        "wakeup_supersession": supersession,
        "churn_per_prefix": churn,
        "damping_churn": damping,
        "prefix_churn": prefix_churn,
    }
    _merge_bench_json(results_dir, payload)
    print(
        f"\nper-op budget: best-path {best_warm_us:.2f}us warm / "
        f"{best_cold_us:.2f}us cold, decision {decision_full_us:.2f}us full / "
        f"{decision_incremental_us:.2f}us incremental, route {route_bytes}B, "
        f"{events_per_sec:,.0f} events/s; supersession "
        f"{supersession['executed']}/{scheduled} executed; trie "
        f"{trie_insert_us:.2f}us insert / {trie_match_us:.2f}us match, "
        f"re-decide 1-of-10k {redecide_us:.2f}us; prefix churn skipped "
        f"{pc.decisions_skipped}/{pc.decisions_run + pc.decisions_skipped}"
    )


def test_oracle_n1000(benchmark):
    """Steady-state oracle on a 1000-node topology."""
    graph = generate_topology(baseline_params(1000), seed=4)
    origin = graph.nodes_of_type(NodeType.C)[0]
    routes = benchmark(lambda: steady_state_routes(graph, origin))
    assert len(routes) > 900


def test_measured_analysis_budget(results_dir):
    """Budget rows for the measured-import and long-memory analysis paths.

    Same contract as ``test_sim_core_budget``: deterministic counters
    (edges parsed/kept, components, DFA window counts on a fixed-seed
    fGn series) must never drift, timing rows (µs per imported edge, µs
    per analysed point) stay within the CI tolerance band.  Merged into
    ``BENCH_sim_core.json`` for ``scripts/check_perf_budget.py``.
    """
    from pathlib import Path

    from repro.analysis import dfa, fractional_gaussian_noise
    from repro.measured import load_serial1

    fixture = (
        Path(__file__).parent.parent
        / "tests" / "topology" / "data" / "fixture_serial1.txt"
    )

    # --- measured-topology import (timing + exact counters) -----------
    graph, report = load_serial1(fixture)  # warm the import path once
    rounds = 50
    t0 = time.perf_counter()
    for _ in range(rounds):
        load_serial1(fixture)
    import_us_per_edge = (
        (time.perf_counter() - t0) / rounds / report.edges_parsed * 1e6
    )
    measured_import = {
        "edges_parsed": report.edges_parsed,
        "transit_edges": report.transit_edges,
        "peer_edges": report.peer_edges,
        "num_nodes": report.num_nodes,
        "components": len(report.components),
        "import_us_per_edge": import_us_per_edge,
    }
    assert report.edges_dropped == 0, "fixture must import without drops"

    # --- DFA long-memory analysis (timing + exact window counters) ----
    points = 8192
    series = fractional_gaussian_noise(points, 0.75, seed=42)
    dfa1 = dfa(series, order=1)
    dfa2 = dfa(series, order=2)
    dfa_us_per_point = (
        _time_per_call_us(lambda: dfa(series, order=1), 20) / points
    )
    longmem_analysis = {
        "points": points,
        "dfa1_windows": dfa1.windows,
        "dfa2_windows": dfa2.windows,
        "dfa1_scales": len(dfa1.scales),
        "dfa_per_point_us": dfa_us_per_point,
    }
    # The estimator must stay near-linear: well under 10 µs/point even
    # on a slow runner, or campaign-scale series become the bottleneck.
    assert dfa_us_per_point < 10.0

    _merge_bench_json(
        results_dir,
        {
            "measured_import": measured_import,
            "longmem_analysis": longmem_analysis,
        },
    )
    print(
        f"\nmeasured/analysis budget: import {import_us_per_edge:.2f}us/edge "
        f"({report.edges_parsed} edges, {report.num_nodes} nodes), "
        f"dfa {dfa_us_per_point:.3f}us/point "
        f"({dfa1.windows}+{dfa2.windows} windows)"
    )
