"""Bench: regenerate Table 1 — Baseline parameters, specified vs realized.

Paper: Table 1 defines the Baseline growth model (node mix and degree
averages as functions of n).  The bench generates one topology per sweep
size and verifies the realized node mix and multihoming degrees track the
specification.
"""


def test_table1_parameters(run_figure):
    result = run_figure("table1")
    assert result.passed, result.to_text()
    assert "spec dM" in result.series and "real dM" in result.series
