"""Ablation: per-interface vs per-prefix MRAI timers.

RFC 4271 specifies per-prefix ("per destination") rate limiting; vendors
— and the paper — implement per-interface timers for efficiency.  With
the paper's single-prefix C-event workload the two must agree almost
exactly, which justifies the paper's modelling choice.
"""

import pytest

from repro.bgp.config import BGPConfig, MRAIMode
from repro.core.cevent import run_c_event_experiment
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


@pytest.mark.parametrize("mode", list(MRAIMode), ids=lambda m: m.value)
def test_mrai_mode_churn(benchmark, mode):
    graph = generate_topology(baseline_params(300), seed=5)
    config = FAST.replace(mrai_mode=mode)
    stats = benchmark.pedantic(
        lambda: run_c_event_experiment(graph, config, num_origins=4, seed=5),
        rounds=1,
        iterations=1,
    )
    print(
        f"\n[{mode.value}] U(T)={stats.u(NodeType.T):.2f} "
        f"U(M)={stats.u(NodeType.M):.2f} messages={stats.measured_messages}"
    )
    # single-prefix workload: the two modes must agree exactly
    reference = run_c_event_experiment(
        graph, FAST.replace(mrai_mode=MRAIMode.PER_INTERFACE), num_origins=4, seed=5
    )
    assert stats.u(NodeType.T) == pytest.approx(reference.u(NodeType.T), rel=1e-9)
