"""Bench: regenerate Fig. 4 — U(X) per C-event by node type.

Paper shape: U(T) > U(M) ≥ U(CP) > U(C) at every size, all growing with
n, with tier-1 nodes growing fastest.
"""


def test_fig04_updates_by_type(run_figure):
    result = run_figure("fig04")
    assert result.passed, result.to_text()
    # the paper's ordering at the largest size, re-checked here directly
    last = -1
    assert result.series["U(T)"][last] > result.series["U(C)"][last]
