"""Bench: regenerate the Sec. 3 topology-property panel (Fig. 3 context).

Paper: generated topologies keep a strict hierarchy, a power-law degree
distribution, strong clustering (≈ 0.15) and a constant ≈ 4-hop average
path length at every size.
"""


def test_fig03_topology_properties(run_figure):
    result = run_figure("fig03")
    assert result.passed, result.to_text()
    assert all(v == 0 for v in result.series["violations"])
