"""Bench: regenerate Fig. 7 — the m/e/q factors behind churn growth.

Paper shape: mc,T grows much faster than mp,T and md,M; the e factors sit
near the NO-WRATE minimum of 2 and barely grow; qd,M ≈ 1 while qp,T ≫
qc,T and both rise with n.
"""


def test_fig07_factor_decomposition(run_figure):
    result = run_figure("fig07")
    assert result.passed, result.to_text()
    assert max(result.series["ed,M"]) < 3.0  # no path exploration
