"""Bench: regenerate Fig. 6 — relative increase of Uc(T), Up(T), Ud(M).

Paper shape (n=1000→10000): Uc(T) grows 18.5×, far ahead of Up(T) and of
Ud(M) (2.6×).  At reduced spans the ratios shrink proportionally but the
ordering Uc(T) first must hold.
"""


def test_fig06_relative_increase(run_figure):
    result = run_figure("fig06")
    assert result.passed, result.to_text()
    assert result.series["Uc(T) rel"][-1] >= result.series["Ud(M) rel"][-1]
