"""Bench: regenerate Fig. 8 — the AS population mix and T-node churn.

Paper shape: RICH-MIDDLE > BASELINE > STATIC-MIDDLE (M nodes are
crucial); NO-MIDDLE ≈ TRANSIT-CLIQUE and both nearly flat (the number of
T nodes is irrelevant by itself; a flat Internet scales far better).
"""


def test_fig08_population_mix(run_figure):
    result = run_figure("fig08")
    assert result.passed, result.to_text()
    assert result.series["RICH-MIDDLE"][-1] > result.series["NO-MIDDLE"][-1]
