"""Ablation: the MRAI timer value itself (Griffin–Premore, paper ref [13]).

Sweeps the timer from 0 (no rate limiting) past the standard 30 s on a
fixed topology and reports churn and convergence per value, under both
withdrawal treatments.  Expected shapes in the paper's delay-first model:

* UP-phase (announcement) convergence grows ~linearly with the timer;
* under NO-WRATE the DOWN phase stays fast at any value (withdrawals
  bypass the timer) while under WRATE it slows with the timer;
* churn under NO-WRATE is nearly flat in the timer (out-queue coalescing
  replaces messages that a smaller timer would have sent).
"""

import pytest

from repro.bgp.config import BGPConfig
from repro.core.mrai_sweep import run_mrai_sweep
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

BASE = BGPConfig(link_delay=0.001, processing_time_max=0.01)
VALUES = (0.0, 2.0, 8.0, 30.0)


@pytest.mark.parametrize("wrate", [False, True], ids=["no-wrate", "wrate"])
def test_mrai_value_sweep(benchmark, wrate):
    graph = generate_topology(baseline_params(250), seed=51)
    sweep = benchmark.pedantic(
        lambda: run_mrai_sweep(
            graph,
            values=VALUES,
            base_config=BASE.replace(wrate=wrate),
            num_origins=4,
            seed=51,
        ),
        rounds=1,
        iterations=1,
    )
    label = "WRATE" if wrate else "NO-WRATE"
    print(f"\n[{label}] MRAI sweep on n=250:")
    print(f"  mrai values:        {list(sweep.values)}")
    print(f"  U(T):               {[round(v, 2) for v in sweep.u_series(NodeType.T)]}")
    print(f"  down convergence s: {[round(v, 1) for v in sweep.down_convergence_series()]}")
    print(f"  up convergence s:   {[round(v, 1) for v in sweep.up_convergence_series()]}")

    up = sweep.up_convergence_series()
    assert up[-1] > up[0]  # more rate limiting, slower announcements
    down = sweep.down_convergence_series()
    if wrate:
        assert down[-1] > 10.0 * max(down[0], 0.05)
    else:
        # withdrawals bypass the timer: DOWN stays far below UP
        assert down[-1] < up[-1]
