"""Bench: regenerate Fig. 12 — the effect of WRATE.

Paper shape: rate-limiting explicit withdrawals (RFC 4271) inflates churn
for every node type; the WRATE/NO-WRATE ratio grows with network size
(≈ 2× for T at n=10000), is larger at the periphery, and is amplified in
a dense core (DENSE-CORE ≈ 3.6×).  The mechanism is path exploration,
visible as e factors well above the NO-WRATE minimum of 2.
"""


def test_fig12_wrate(run_figure):
    result = run_figure("fig12")
    assert result.passed, result.to_text()
    for node_type in ("T", "M", "CP", "C"):
        assert result.series[f"ratio {node_type}"][-1] > 1.0
