"""Extension bench: decision-level path exploration (Sec. 6 mechanism).

Measures best-route changes per C-event directly at the decision process,
complementing the message-level e-factors of Fig. 12: WRATE must explore
strictly more than NO-WRATE, and the exploration excess must be larger at
the network edge (longer paths → more alternatives), matching both the
paper and the Oliveira et al. measurement it cites.
"""

from repro.bgp.config import BGPConfig
from repro.core.exploration import exploration_comparison
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)


def test_wrate_path_exploration(benchmark):
    graph = generate_topology(baseline_params(300), seed=41)
    results = benchmark.pedantic(
        lambda: exploration_comparison(graph, FAST, num_origins=6, seed=41),
        rounds=1,
        iterations=1,
    )
    no_wrate = results["NO-WRATE"]
    wrate = results["WRATE"]
    print("\nbest-route changes per C-event (NO-WRATE vs WRATE):")
    for node_type in no_wrate.changes_per_type:
        print(
            f"  {node_type.value:2s}: {no_wrate.changes_per_type[node_type]:.2f} "
            f"-> {wrate.changes_per_type[node_type]:.2f}"
        )
    for node_type in (NodeType.M, NodeType.CP, NodeType.C):
        assert (
            wrate.changes_per_type[node_type]
            > no_wrate.changes_per_type[node_type]
        )
    # exploration excess larger at the edge than in the tier-1 core
    assert wrate.exploration_excess(NodeType.C) + 1.0 >= wrate.exploration_excess(
        NodeType.T
    )
