"""Bench: regenerate Fig. 5 — update sources Uc(T)/Up(T) and U*(M).

Paper shape: at T nodes both customer and peer terms matter, with Uc(T)
growing quadratically and overtaking; M nodes get the large majority of
updates from their providers (U(M) ≈ Ud(M)).
"""


def test_fig05_update_sources(run_figure):
    result = run_figure("fig05")
    assert result.passed, result.to_text()
    assert result.series["Ud(M)"][-1] > result.series["Uc(M)"][-1]
    assert result.series["Ud(M)"][-1] > result.series["Up(M)"][-1]
