"""Extension bench: router processing load across network sizes.

The paper's Sec.-1 concern is that churn growth translates into
processing load on core routers.  This bench measures the simulator's
native queueing metrics (messages processed, busy time, in-queue peaks)
across two network sizes and checks the load gradient: tier-1 routers
process more per node than stubs, and their per-node load grows with the
network.
"""

from repro.bgp.config import BGPConfig
from repro.core.load import run_load_probe
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)
SIZES = (200, 400)


def test_processing_load_scaling(benchmark):
    reports = benchmark.pedantic(
        lambda: [
            run_load_probe(
                generate_topology(baseline_params(n), seed=71),
                FAST,
                num_origins=6,
                seed=71,
            )
            for n in SIZES
        ],
        rounds=1,
        iterations=1,
    )
    print("\nprocessing load per node (mean messages / busy s / peak queue):")
    for report in reports:
        for node_type in (NodeType.T, NodeType.M, NodeType.C):
            load = report.per_type[node_type]
            print(
                f"  n={report.n} {node_type.value:2s}: "
                f"{load.mean_processed:7.1f} msgs  "
                f"{load.mean_busy_time:6.2f}s busy  "
                f"queue<= {load.max_queue_length}"
            )
    for report in reports:
        assert (
            report.per_type[NodeType.T].mean_processed
            > report.per_type[NodeType.C].mean_processed
        )
    # per-node tier-1 load grows with the network (the upgrade treadmill);
    # note origins are constant, so this is per-event load growth
    assert (
        reports[1].per_type[NodeType.T].mean_processed
        > reports[0].per_type[NodeType.T].mean_processed
    )
