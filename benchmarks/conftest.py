"""Shared infrastructure for the benchmark harness.

Each figure benchmark regenerates one paper artifact: it runs the
registered experiment, prints the same rows/series the paper reports,
records the rendered result under ``benchmark_results/`` and asserts the
paper's shape checks.

Scale is controlled by ``REPRO_SCALE`` (default ``smoke`` here, so the
whole harness runs in minutes; use ``REPRO_SCALE=default`` or ``full``
for higher-fidelity sweeps — see EXPERIMENTS.md for recorded campaigns).
Execution is controlled by ``REPRO_JOBS`` (sweep worker processes) and
``REPRO_CACHE_DIR`` (persistent sweep cache); neither changes any
measured number, so benchmarked results stay comparable across runs.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.cache import sweep_execution
from repro.experiments.registry import get_experiment
from repro.experiments.report import ExperimentResult
from repro.experiments.scale import get_scale

#: Seed shared by all figure benchmarks (recorded in EXPERIMENTS.md).
BENCH_SEED = 0


@pytest.fixture(scope="session")
def bench_scale():
    """The scale preset for this benchmark session."""
    return get_scale(os.environ.get("REPRO_SCALE", "smoke"))


@pytest.fixture(scope="session", autouse=True)
def bench_execution():
    """Session-wide sweep execution policy from REPRO_JOBS/REPRO_CACHE_DIR."""
    jobs = int(os.environ.get("REPRO_JOBS", "0")) or None
    cache_dir = os.environ.get("REPRO_CACHE_DIR") or None
    with sweep_execution(jobs=jobs, cache_dir=cache_dir) as execution:
        yield execution


@pytest.fixture(scope="session")
def results_dir():
    """Directory where rendered experiment reports are collected."""
    path = Path(__file__).resolve().parent.parent / "benchmark_results"
    path.mkdir(exist_ok=True)
    return path


@pytest.fixture
def run_figure(bench_scale, results_dir, benchmark):
    """Run one registered figure experiment exactly once, timed.

    Returns the :class:`ExperimentResult`; also prints the report and
    writes it (text + markdown) under ``benchmark_results/``.
    """

    def runner(experiment_id: str, **kwargs) -> ExperimentResult:
        spec = get_experiment(experiment_id)
        result = benchmark.pedantic(
            lambda: spec.run(bench_scale, seed=BENCH_SEED, **kwargs),
            rounds=1,
            iterations=1,
        )
        text = result.to_text()
        print()
        print(text)
        stem = results_dir / f"{experiment_id}_{bench_scale.name}"
        stem.with_suffix(".txt").write_text(text + "\n", encoding="utf-8")
        stem.with_suffix(".md").write_text(result.to_markdown(), encoding="utf-8")
        return result

    return runner
