"""Extension bench: churn trajectory on an *evolving* topology.

The paper regenerates an independent topology per size, which adds
instance-to-instance variance (its stated reason for plotting confidence
intervals).  With :func:`repro.topology.evolve.evolve_topology` the same
network is grown through the sweep, so the U(T) trajectory is a true
longitudinal measurement.  The Baseline conclusion must survive: tier-1
churn per C-event increases as the network grows.
"""

from repro.bgp.config import BGPConfig
from repro.core.cevent import run_c_event_experiment
from repro.topology.evolve import evolve_topology
from repro.topology.generator import generate_topology
from repro.topology.params import baseline_params
from repro.topology.types import NodeType
from repro.topology.validation import find_violations

FAST = BGPConfig(mrai=2.0, link_delay=0.001, processing_time_max=0.01)
SIZES = (200, 400, 600)


def _trajectory():
    graph = generate_topology(baseline_params(SIZES[0]), seed=31)
    n_t = graph.type_counts()[NodeType.T]
    series = []
    for n in SIZES:
        if len(graph) < n:
            evolve_topology(graph, baseline_params(n, n_t=n_t), seed=n)
        assert find_violations(graph) == []
        stats = run_c_event_experiment(graph, FAST, num_origins=6, seed=31)
        series.append(stats.u(NodeType.T))
    return series


def test_evolving_topology_churn_trajectory(benchmark):
    series = benchmark.pedantic(_trajectory, rounds=1, iterations=1)
    print("\nU(T) on the evolving network:", [round(v, 2) for v in series])
    assert series[-1] > series[0]
