"""Extension bench: churn and table growth along the prefix axis.

The paper scales the topology at one prefix per event; this bench
regenerates the ``ext-prefix-scaling`` study — table size P swept on one
topology, PER_INTERFACE vs PER_PREFIX MRAI — and asserts its shape
checks: churn grows with P, Loc-RIBs track the allocated table, and the
per-prefix dirty-set tracking skips nearly all re-decisions.
"""


def test_prefix_scaling(run_figure):
    result = run_figure("ext-prefix-scaling")
    assert result.passed, result.to_text()
