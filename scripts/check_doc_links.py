#!/usr/bin/env python3
"""Fail the build on dead relative links in the repo's markdown docs.

Scans README.md plus every ``*.md`` under docs/ (and any other tracked
top-level markdown) for inline links and images.  External links
(``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
ignored; every other target must exist on disk, resolved relative to
the file containing the link.  Stdlib only — runs anywhere CI does.

Usage::

    python scripts/check_doc_links.py [root]
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links/images: [text](target) / ![alt](target)
_LINK = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
#: fenced code blocks — links inside them are examples, not references
_FENCE = re.compile(r"^(```|~~~)")

_SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")


def markdown_files(root: Path) -> list[Path]:
    files = sorted(root.glob("*.md"))
    docs = root / "docs"
    if docs.is_dir():
        files.extend(sorted(docs.rglob("*.md")))
    return files


def check_file(path: Path, root: Path) -> list[str]:
    failures = []
    in_fence = False
    for line_number, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for match in _LINK.finditer(line):
            target = match.group(1)
            if target.startswith(_SKIP_PREFIXES):
                continue
            # strip an in-page anchor from a file target
            file_part = target.split("#", 1)[0]
            if not file_part:
                continue
            resolved = (path.parent / file_part).resolve()
            if not resolved.exists():
                failures.append(
                    f"{path.relative_to(root)}:{line_number}: "
                    f"dead link -> {target}"
                )
    return failures


def main(argv: list[str]) -> int:
    root = Path(argv[1]).resolve() if len(argv) > 1 else Path.cwd()
    files = markdown_files(root)
    if not files:
        print(f"no markdown files found under {root}", file=sys.stderr)
        return 2
    failures = []
    for path in files:
        failures.extend(check_file(path, root))
    for failure in failures:
        print(failure)
    checked = len(files)
    if failures:
        print(f"FAIL: {len(failures)} dead link(s) across {checked} file(s)")
        return 1
    print(f"OK: no dead relative links in {checked} markdown file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
