#!/usr/bin/env bash
# Graph-partitioned determinism smoke test.
#
# Runs the same C-event experiment three ways — serial, partitioned
# in-process (--partitions 2), and partitioned over sockets
# (serve --partitions 2 + two real worker processes) — and diffs the
# churn artifacts byte-for-byte.  Any window-barrier, border-event
# ordering, serialization, or counter-merge bug in the partition mode
# shows up as a diff here.
set -euo pipefail

PORT="${1:-7791}"
N="${PARTITION_SMOKE_N:-60}"
ORIGINS="${PARTITION_SMOKE_ORIGINS:-3}"
WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

export PYTHONPATH=src

echo "== topology (BASELINE n=$N) =="
python -m repro.experiments.cli topology generate -n "$N" \
    --scenario BASELINE --seed 1 -o "$WORK/topo.json"

echo "== serial run =="
python -m repro.experiments.cli simulate "$WORK/topo.json" \
    --origins "$ORIGINS" --seed 1 --mrai 2 --churn-json "$WORK/serial.json"

echo "== partitioned run (2 in-process members) =="
python -m repro.experiments.cli simulate "$WORK/topo.json" \
    --origins "$ORIGINS" --seed 1 --mrai 2 --partitions 2 \
    --churn-json "$WORK/inprocess.json"

echo "== partitioned run (coordinator + 2 workers over sockets) =="
python -m repro.experiments.cli serve --partitions 2 \
    --topology "$WORK/topo.json" --origins "$ORIGINS" --seed 1 --mrai 2 \
    --bind "127.0.0.1:$PORT" --lease-timeout 60 -o "$WORK/dist" &
SERVE_PID=$!
# Workers retry with backoff, so they may start before the port is up.
python -m repro.experiments.cli worker "127.0.0.1:$PORT" --quiet &
python -m repro.experiments.cli worker "127.0.0.1:$PORT" --quiet &
wait "$SERVE_PID"

echo "== diff: serial vs in-process partitioned =="
diff "$WORK/serial.json" "$WORK/inprocess.json"
echo "identical"

echo "== diff: serial vs socket-distributed partitioned =="
diff "$WORK/serial.json" "$WORK/dist/churn.json"
echo "identical"

echo "PASS: partitioned churn statistics are byte-identical to serial"
