#!/usr/bin/env bash
# Measured-topology + long-memory analysis determinism smoke test.
#
# Exercises the repro.measured / repro.analysis subsystems end-to-end:
# imports the committed serial-1 fixture (plain and gzip'd, diffing the
# resulting topology JSON), checks the fidelity report is byte-stable
# across runs, then runs the ext-longmem campaign twice on the measured
# fixture topology (separate cache dirs, so the second run really
# recomputes) and diffs campaign.json byte-for-byte.  Any seeding,
# pivot-sampling, bootstrap or serialization nondeterminism shows up as
# a diff here.
set -euo pipefail

FIXTURE="tests/topology/data/fixture_serial1.txt"
WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

export PYTHONPATH=src
export REPRO_SCALE=smoke

echo "== import fixture (plain and gzip) =="
python -m repro.experiments.cli topology import "$FIXTURE" \
    -o "$WORK/plain.json" --report-json "$WORK/plain-report.json"
python -m repro.experiments.cli topology import "$FIXTURE.gz" \
    -o "$WORK/gz.json"
# The scenario name embeds the source filename (.gz suffix differs);
# everything else — nodes, types, edges — must be byte-identical.
diff <(grep -v '"scenario"' "$WORK/plain.json") \
     <(grep -v '"scenario"' "$WORK/gz.json")
echo "identical"

echo "== fidelity report determinism =="
python -m repro.experiments.cli topology generate -n 150 --seed 1 \
    -o "$WORK/generated.json"
python -m repro.experiments.cli topology stats "$WORK/generated.json" \
    --against "$WORK/plain.json" --pivots 32 --json "$WORK/fidelity-a.json"
python -m repro.experiments.cli topology stats "$WORK/generated.json" \
    --against "$WORK/plain.json" --pivots 32 --json "$WORK/fidelity-b.json"
diff "$WORK/fidelity-a.json" "$WORK/fidelity-b.json"
echo "identical"

echo "== ext-longmem campaign on the measured fixture (run 1) =="
export REPRO_LONGMEM_TOPOLOGY="$FIXTURE"
python -m repro.experiments.cli campaign --experiment ext-longmem \
    --seed 1 -o "$WORK/run1" --cache-dir "$WORK/cache1"

echo "== ext-longmem campaign on the measured fixture (run 2) =="
python -m repro.experiments.cli campaign --experiment ext-longmem \
    --seed 1 -o "$WORK/run2" --cache-dir "$WORK/cache2"

echo "== diff: campaign.json run 1 vs run 2 =="
diff "$WORK/run1/campaign.json" "$WORK/run2/campaign.json"
echo "identical"

echo "PASS: measured import and long-memory analysis are byte-deterministic"
