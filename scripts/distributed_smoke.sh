#!/usr/bin/env bash
# Distributed determinism smoke test.
#
# Runs the same campaign twice — once serially, once as a coordinator
# with two worker processes — and diffs the artifacts byte-for-byte.
# Any scheduling, framing, or merge-order bug in the distributed layer
# shows up as a diff here.  summary.txt is excluded (it reports wall
# clock and worker counts, which legitimately differ).
set -euo pipefail

SCALE="${REPRO_SCALE:-smoke}"
PORT="${1:-7799}"
WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

export PYTHONPATH=src

echo "== serial campaign (scale=$SCALE) =="
python -m repro.experiments.cli campaign --scale "$SCALE" -o "$WORK/serial"

echo "== distributed campaign: coordinator + 2 workers =="
python -m repro.experiments.cli serve --scale "$SCALE" -o "$WORK/dist" \
    --bind "127.0.0.1:$PORT" --lease-timeout 30 &
SERVE_PID=$!
# Workers retry with backoff, so they may start before the port is up.
python -m repro.experiments.cli worker "127.0.0.1:$PORT" --quiet &
python -m repro.experiments.cli worker "127.0.0.1:$PORT" --quiet &
wait "$SERVE_PID"

echo "== diffing artifacts =="
diff "$WORK/serial/campaign.json" "$WORK/dist/campaign.json"
diff "$WORK/serial/campaign.md" "$WORK/dist/campaign.md"
echo "OK: distributed campaign.json and campaign.md are byte-identical to serial"
