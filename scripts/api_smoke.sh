#!/usr/bin/env bash
# Campaign-service determinism smoke test.
#
# Runs the same campaign twice — once directly via the CLI, once by
# submitting a spec to a live `repro-bgp api` service over HTTP,
# streaming its NDJSON event log to completion, and downloading the
# served artifacts — and diffs campaign.json / campaign.md byte-for-
# byte.  Any scheduling, serialization, caching, or checkpoint bug in
# the service layer shows up as a diff here.
set -euo pipefail

SCALE="${REPRO_SCALE:-smoke}"
PORT="${1:-7788}"
WORK="$(mktemp -d)"
trap 'kill $(jobs -p) 2>/dev/null || true; rm -rf "$WORK"' EXIT

export PYTHONPATH=src

echo "== direct campaign (scale=$SCALE) =="
python -m repro.experiments.cli campaign --scale "$SCALE" -o "$WORK/direct"

echo "== campaign service on 127.0.0.1:$PORT =="
python -m repro.experiments.cli api --bind "127.0.0.1:$PORT" \
    --data-dir "$WORK/service" &
API_PID=$!

python - "$PORT" "$SCALE" "$WORK/served" <<'PY'
import http.client
import json
import pathlib
import sys
import time

port, scale, out_dir = int(sys.argv[1]), sys.argv[2], pathlib.Path(sys.argv[3])
out_dir.mkdir(parents=True)


def request(method, path, body=None):
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=60)
    try:
        conn.request(method, path, body=body)
        response = conn.getresponse()
        return response.status, response.read()
    finally:
        conn.close()


# the service may still be binding its port: retry with backoff
for attempt in range(50):
    try:
        status, _ = request("GET", "/healthz")
        if status == 200:
            break
    except OSError:
        pass
    time.sleep(0.2)
else:
    sys.exit("service never became healthy")

status, body = request(
    "POST", "/campaigns", json.dumps({"scale": scale}).encode()
)
reply = json.loads(body)
assert status == 202, (status, reply)
job_id = reply["id"]
print(f"submitted campaign {job_id}")

# stream the NDJSON event log until the terminal event closes the stream
conn = http.client.HTTPConnection("127.0.0.1", port, timeout=600)
conn.request("GET", f"/campaigns/{job_id}/events")
response = conn.getresponse()
assert response.status == 200, response.status
last = None
for raw in response:
    event = json.loads(raw)
    last = event["event"]
    if last in ("job_started", "experiment_done", "job_done", "job_failed"):
        print(f"  event: {json.dumps(event)}")
conn.close()
assert last == "job_done", f"stream ended on {last!r}, wanted job_done"

for name in ("campaign.json", "campaign.md"):
    status, payload = request("GET", f"/campaigns/{job_id}/artifacts/{name}")
    assert status == 200, (name, status)
    (out_dir / name).write_bytes(payload)
print(f"served artifacts downloaded to {out_dir}")
PY

kill "$API_PID"
wait "$API_PID" 2>/dev/null || true

echo "== diffing artifacts =="
diff "$WORK/direct/campaign.json" "$WORK/served/campaign.json"
diff "$WORK/direct/campaign.md" "$WORK/served/campaign.md"
echo "OK: served campaign.json and campaign.md are byte-identical to the direct run"
