#!/usr/bin/env python3
"""CI gate: compare BENCH_sim_core.json against the committed baseline.

Two classes of checks, matching the two classes of numbers the budget
benchmark records (see ``benchmarks/bench_perf_components.py``):

* **Deterministic counters** (executed/delivered/cancelled event counts
  of fixed-seed scenarios) must match the baseline *exactly* — they are
  machine-independent, so any drift is a real behavior change (e.g. the
  stale-wakeup fix regressing and no-op events sneaking back into the
  heap).
* **Timing metrics** (per-op µs, events/s) are compared within a
  tolerance band (default 3.0x, ``--tolerance``): CI runners are noisy
  and slower than dev machines, but an order-of-magnitude regression —
  say the preference-key memoization being dropped — still trips it.

Additionally the supersession invariant itself is asserted: the tracked
scenario must execute at most half the events the pre-fix kernel did.

Usage::

    python scripts/check_perf_budget.py \
        --current benchmark_results/BENCH_sim_core.json \
        --baseline benchmarks/baselines/BENCH_sim_core.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: (section, key) pairs that must match the baseline exactly.
EXACT_COUNTERS = [
    ("wakeup_supersession", "scheduled"),
    ("wakeup_supersession", "executed"),
    ("wakeup_supersession", "cancelled"),
    ("churn_per_prefix", "executed_events"),
    ("churn_per_prefix", "delivered_messages"),
    ("churn_per_prefix", "cancelled_events"),
    ("damping_churn", "executed_events"),
    ("damping_churn", "cancelled_events"),
    ("prefix_churn", "events_executed"),
    ("prefix_churn", "total_updates"),
    ("prefix_churn", "decisions_run"),
    ("prefix_churn", "decisions_skipped"),
    ("prefix_churn", "loc_rib_digest"),
    ("measured_import", "edges_parsed"),
    ("measured_import", "transit_edges"),
    ("measured_import", "peer_edges"),
    ("measured_import", "num_nodes"),
    ("measured_import", "components"),
    ("longmem_analysis", "points"),
    ("longmem_analysis", "dfa1_windows"),
    ("longmem_analysis", "dfa2_windows"),
    ("longmem_analysis", "dfa1_scales"),
]

#: (section, key) pairs where *larger* is worse (cost in µs or bytes).
COST_METRICS = [
    ("per_op", "best_path_us_warm"),
    ("per_op", "best_path_us_cold"),
    ("per_op", "decision_full_us"),
    ("per_op", "decision_incremental_us"),
    ("per_op", "route_bytes"),
    ("prefix_per_op", "trie_insert_us"),
    ("prefix_per_op", "trie_longest_match_us"),
    ("prefix_per_op", "redecide_1_of_10k_us"),
    ("measured_import", "import_us_per_edge"),
    ("longmem_analysis", "dfa_per_point_us"),
]

#: (section, key) pairs where *smaller* is worse (throughput).
THROUGHPUT_METRICS = [("per_op", "events_per_sec")]


def _load(path: Path) -> dict:
    try:
        return json.loads(path.read_text(encoding="utf-8"))
    except (OSError, json.JSONDecodeError) as exc:
        sys.exit(f"error: cannot read {path}: {exc}")


def _get(data: dict, section: str, key: str, path: Path):
    try:
        return data[section][key]
    except (KeyError, TypeError):
        sys.exit(f"error: {path} is missing {section}.{key}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--current",
        type=Path,
        default=Path("benchmark_results/BENCH_sim_core.json"),
        help="budget table produced by this run",
    )
    parser.add_argument(
        "--baseline",
        type=Path,
        default=Path("benchmarks/baselines/BENCH_sim_core.json"),
        help="committed reference budget table",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=3.0,
        help="allowed slowdown factor for timing metrics (default 3.0)",
    )
    args = parser.parse_args(argv)

    current = _load(args.current)
    baseline = _load(args.baseline)
    failures = []

    for section, key in EXACT_COUNTERS:
        got = _get(current, section, key, args.current)
        want = _get(baseline, section, key, args.baseline)
        if got != want:
            failures.append(
                f"{section}.{key}: {got} != baseline {want} (deterministic "
                "counter drifted — event economy changed)"
            )

    supersession = current.get("wakeup_supersession", {})
    executed = supersession.get("executed", 0)
    pre_fix = supersession.get("executed_pre_fix", supersession.get("scheduled", 0))
    if executed * 2 > pre_fix:
        failures.append(
            f"wakeup_supersession: executed {executed} events vs {pre_fix} "
            "pre-fix — the >=2x stale-wakeup reduction no longer holds"
        )

    prefix_churn = current.get("prefix_churn", {})
    skipped = prefix_churn.get("decisions_skipped", 0)
    ran = prefix_churn.get("decisions_run", 0)
    if skipped <= 10 * ran:
        failures.append(
            f"prefix_churn: skipped {skipped} vs run {ran} decisions — "
            "per-prefix dirty tracking no longer dominates the multi-prefix "
            "decision economy"
        )

    for section, key in COST_METRICS:
        got = float(_get(current, section, key, args.current))
        want = float(_get(baseline, section, key, args.baseline))
        limit = want * args.tolerance
        if got > limit:
            failures.append(
                f"{section}.{key}: {got:.3f} exceeds budget {limit:.3f} "
                f"(baseline {want:.3f} x tolerance {args.tolerance})"
            )

    for section, key in THROUGHPUT_METRICS:
        got = float(_get(current, section, key, args.current))
        want = float(_get(baseline, section, key, args.baseline))
        floor = want / args.tolerance
        if got < floor:
            failures.append(
                f"{section}.{key}: {got:,.0f} below floor {floor:,.0f} "
                f"(baseline {want:,.0f} / tolerance {args.tolerance})"
            )

    if failures:
        print("perf budget check FAILED:")
        for failure in failures:
            print(f"  - {failure}")
        return 1
    print(
        f"perf budget check OK: {len(EXACT_COUNTERS)} counters exact, "
        f"{len(COST_METRICS) + len(THROUGHPUT_METRICS)} timing metrics within "
        f"{args.tolerance}x of baseline"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
