"""Setup shim.

Kept alongside pyproject.toml so editable installs work on environments
whose setuptools predates PEP 660 wheel-less editable support
(``python setup.py develop`` / ``pip install -e .`` both work).
"""

from setuptools import setup

setup()
